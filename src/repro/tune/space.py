"""The tuning search space and its cost-model prior.

A *plan* is everything the serving layer may vary without changing
program semantics: the optimization level (how aggressively to fuse and
contract), the execution backend, and — for the tile-parallel backend —
the worker count and forced tile shape.  Enumerating the full cross
product is cheap; *measuring* it is not, so every candidate is first
ranked by a closed-form instance of the analytic machine model
(:mod:`repro.machine.cost`) and only the best-ranked few are measured.

The prior reuses the model's ingredients directly: per-point operation
counts from :func:`repro.machine.cost._expr_costs` over the program's
:class:`~repro.machine.trace.MemoryLayout`, the host machine's cycle
parameters (:func:`repro.machine.models.host_machine_model`), and — for
tiled execution — the real tile layout from
:func:`repro.parallel.tiling.plan_tiles` with halo traffic accounted the
same way :func:`repro.parallel.comm.analyze_run` counts border-exchange
strips.  The full trace-driven simulator stays reserved for paper-scale
runs: a prior must rank hundreds of candidates in milliseconds, not
replay millions of addresses per candidate.

What the prior captures (the ratios that decide rankings, not absolute
times):

* vectorized backends beat interpreted ones by a per-point dispatch
  overhead term;
* statement-at-a-time whole-region execution streams every operand
  through memory once per statement, while tile-at-a-time execution of
  a fused cluster pays main-memory traffic roughly once per *array* as
  long as a tile's working set fits the last-level cache;
* parallel sweeps divide by the worker count but pay a per-tile
  dispatch cost and per-tile halo reads, so over-decomposition loses.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.fusion.redundancy import is_cse_scalar
from repro.interp.evalexpr import eval_scalar
from repro.ir.expr import ScalarRef
from repro.machine.cost import _expr_costs
from repro.machine.models import MachineModel, host_machine_model
from repro.machine.trace import MemoryLayout
from repro.parallel.tiling import TileShape, halo_elements, plan_tiles
from repro.scalarize.codegen_np import shard_plan
from repro.scalarize.loopnest import (
    LoopNest,
    ReductionLoop,
    SBoundary,
    ScalarAssign,
    ScalarProgram,
    SeqLoop,
    SIf,
    SNode,
    SWhile,
)
from repro.util.errors import ReproError

#: Element size assumed by the traffic terms (every array is float64 or
#: a full-width integer in this compiler).
ELEM_BYTES = 8

#: Extra execution cycles per index point, per backend: the price of
#: interpreting (or running Python bytecode for) one element instead of
#: being inside a vectorized slice operation.
PER_POINT_OVERHEAD_CYCLES = {
    "interp": 4000.0,
    "codegen_py": 400.0,
    "codegen_np": 0.0,
    "np-par": 0.0,
    "c": 0.0,
}

#: Fixed per-statement cost of one whole-region NumPy operation
#: (ufunc/slicing overhead), in microseconds.
VECTOR_STMT_OVERHEAD_US = 2.0

#: One host-compiler invocation, amortized: the ``c`` backend pays a
#: cold ``cc`` run (tens of milliseconds) whose shared object is then
#: cached content-addressed, so the prior spreads it over an assumed
#: request volume instead of charging it to a single execution.
NATIVE_COMPILE_US = 80_000.0
NATIVE_COMPILE_AMORTIZATION = 200

#: Estimated trip count for loops whose bounds the prior cannot evaluate
#: statically (runtime-computed scalars, while loops).
UNKNOWN_TRIPS = 4


class Plan(NamedTuple):
    """One candidate serving configuration.

    ``workers`` and ``tile_shape`` only apply to the ``np-par`` backend
    and stay ``None`` elsewhere.  ``tile_shape`` follows
    :data:`repro.parallel.tiling.TileShape`: ``None`` (heuristic), an
    int (per-dimension cap) or a tuple (forced extents).
    """

    level: str
    backend: str
    workers: Optional[int] = None
    tile_shape: TileShape = None

    def describe(self) -> str:
        parts = [self.level, self.backend]
        if self.workers is not None:
            parts.append("w%d" % self.workers)
        if self.tile_shape is not None:
            if isinstance(self.tile_shape, tuple):
                parts.append("t%s" % "x".join(map(str, self.tile_shape)))
            else:
                parts.append("t%d" % self.tile_shape)
        return "/".join(parts)

    def to_dict(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "backend": self.backend,
            "workers": self.workers,
            "tile_shape": (
                list(self.tile_shape)
                if isinstance(self.tile_shape, tuple)
                else self.tile_shape
            ),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Plan":
        try:
            tile_shape = data.get("tile_shape")
            if isinstance(tile_shape, list):
                tile_shape = tuple(int(extent) for extent in tile_shape)
            workers = data.get("workers")
            return cls(
                level=str(data["level"]),
                backend=str(data["backend"]),
                workers=None if workers is None else int(workers),
                tile_shape=tile_shape,
            )
        except (KeyError, TypeError, ValueError):
            raise ReproError("malformed plan record %r" % (data,))


def default_plan(level: str = "c2", backend: str = "codegen_np") -> Plan:
    """The hard-coded plan the serving layer runs without tuning."""
    return Plan(level=level, backend=backend)


class PlanSpace(NamedTuple):
    """The candidate axes the tuner crosses.

    ``tile_shapes`` may contain ``None`` (the heuristic layout), ints
    and tuples; tuples whose rank disagrees with a program's sweeps are
    dropped at prediction time.
    """

    levels: Tuple[str, ...]
    backends: Tuple[str, ...]
    worker_counts: Tuple[int, ...]
    tile_shapes: Tuple[TileShape, ...]


def _default_worker_counts(max_workers: Optional[int] = None) -> Tuple[int, ...]:
    limit = max_workers or os.cpu_count() or 1
    counts = []
    w = 1
    while w < limit:
        counts.append(w)
        w *= 2
    counts.append(limit)
    return tuple(dict.fromkeys(counts))


def default_space(
    level: str = "c2",
    backend: str = "codegen_np",
    max_workers: Optional[int] = None,
) -> PlanSpace:
    """The default search space around a service's configured plan.

    Levels pair the configured level with the paper's most aggressive
    fusion configuration; backends cover the three generated-code
    engines (the interpreter is never worth measuring); worker counts
    are powers of two up to the processor count; tile shapes mix the
    heuristic layout with square per-dimension caps (always rank-safe).
    Row-band shapes tailored to the program's sweeps are added by
    :func:`tile_shapes_for`.
    """
    from repro.exec.native import cc_available

    levels = tuple(dict.fromkeys([level, "c2+f4", "c2+f4+cse"]))
    candidates = [backend, "codegen_np", "np-par", "codegen_py"]
    # The native backend joins the space only on machines that can
    # actually compile it; degraded hosts never see it as a candidate.
    if cc_available():
        candidates.append("c")
    elif backend == "c":
        candidates[0] = "codegen_np"
    backends = tuple(dict.fromkeys(candidates))
    return PlanSpace(
        levels=levels,
        backends=backends,
        worker_counts=_default_worker_counts(max_workers),
        tile_shapes=(None, 32, 64, 128),
    )


def tile_shapes_for(
    program: ScalarProgram, base: Sequence[TileShape] = (None, 32, 64, 128)
) -> Tuple[TileShape, ...]:
    """Extend ``base`` with row-band shapes matched to the program.

    When every parallel sweep has the same rank and statically known
    bounds, a band over the leading (slowest-varying) dimension with the
    remaining dimensions left whole keeps tiles contiguous in memory —
    the layout that wins on long fused pipelines.  Programs with mixed
    sweep ranks only get the rank-safe entries of ``base``.
    """
    shapes: List[TileShape] = list(base)
    sweeps: List[Tuple[int, ...]] = []
    try:
        for nest in program.loop_nests():
            plan = shard_plan(nest, program.partial)
            if not plan.parallel or not plan.shardable_dims:
                continue
            bounds = nest.region.concrete_bounds({})
            sweeps.append(
                tuple(
                    bounds[dim - 1][1] - bounds[dim - 1][0] + 1
                    for dim in plan.shardable_dims
                )
            )
    except Exception:
        return tuple(dict.fromkeys(shapes))
    ranks = {len(extents) for extents in sweeps}
    if len(ranks) == 1 and ranks == {max(ranks)} and max(ranks) >= 2:
        rank = ranks.pop()
        tails = tuple(
            max(extents[dim] for extents in sweeps) for dim in range(1, rank)
        )
        for rows in (16, 32, 64):
            shapes.append((rows,) + tails)
    return tuple(dict.fromkeys(shapes))


def enumerate_plans(
    space: PlanSpace, program: Optional[ScalarProgram] = None
) -> List[Plan]:
    """Every candidate plan in the space, serial backends first.

    Serial backends contribute one plan per level; ``np-par``
    contributes the cross product of worker counts and tile shapes.
    """
    plans: List[Plan] = []
    tile_shapes: Iterable[TileShape] = space.tile_shapes
    if program is not None:
        tile_shapes = tile_shapes_for(program, space.tile_shapes)
    for level in space.levels:
        for backend in space.backends:
            if backend == "np-par":
                for workers in space.worker_counts:
                    for tile_shape in tile_shapes:
                        plans.append(Plan(level, backend, workers, tile_shape))
            else:
                plans.append(Plan(level, backend))
    return list(dict.fromkeys(plans))


# -- the cost prior ----------------------------------------------------------


class _NestProfile(NamedTuple):
    """Static facts about one loop nest the prior prices repeatedly."""

    points: float
    compute_cycles: float
    ref_slots: float  # per-point loads+stores summed over statements
    cse_slots: float  # per-point defs+uses of redundancy-elimination scalars
    distinct_arrays: int
    statements: int
    parallel: bool
    sweep_bounds: Optional[Tuple[Tuple[int, int], ...]]
    serial_iterations: float
    halo: Tuple[int, ...]


def _line_fraction(machine: MachineModel) -> float:
    line = machine.caches[-1].line if machine.caches else 64
    return ELEM_BYTES / float(line)


def _safe_trips(node: SeqLoop) -> float:
    try:
        lo = int(eval_scalar(node.lo, {}))
        hi = int(eval_scalar(node.hi, {}))
    except Exception:
        return float(UNKNOWN_TRIPS)
    return float(max(0, (lo - hi if node.downto else hi - lo) + 1))


def _collect_profiles(
    body: Sequence[SNode],
    program: ScalarProgram,
    layout: MemoryLayout,
    factor: float,
    machine: MachineModel,
    out: List[Tuple[_NestProfile, float]],
) -> None:
    for node in body:
        if isinstance(node, LoopNest):
            out.append((_nest_profile(node, program, layout, machine), factor))
        elif isinstance(node, ReductionLoop):
            out.append(
                (_reduction_profile(node, layout, machine), factor)
            )
        elif isinstance(node, SeqLoop):
            _collect_profiles(
                node.body, program, layout, factor * _safe_trips(node), machine, out
            )
        elif isinstance(node, SIf):
            _collect_profiles(
                node.then_body, program, layout, factor, machine, out
            )
            _collect_profiles(
                node.else_body, program, layout, factor, machine, out
            )
        elif isinstance(node, SWhile):
            _collect_profiles(
                node.body, program, layout, factor * UNKNOWN_TRIPS, machine, out
            )
        elif isinstance(node, (SBoundary, ScalarAssign)):
            continue  # negligible next to the loop nests


def _points(bounds: Sequence[Tuple[int, int]]) -> float:
    total = 1.0
    for lo, hi in bounds:
        total *= max(0, hi - lo + 1)
    return total


def _nest_profile(
    nest: LoopNest,
    program: ScalarProgram,
    layout: MemoryLayout,
    machine: MachineModel,
) -> _NestProfile:
    try:
        bounds = nest.region.concrete_bounds({})
    except Exception:
        bounds = tuple((1, UNKNOWN_TRIPS) for _ in range(nest.rank))
    points = _points(bounds)
    compute = 0.0
    ref_slots = 0.0
    cse_slots = 0.0
    arrays = set()
    for stmt in nest.body:
        piece = _expr_costs(stmt.rhs, layout)
        compute += (
            piece["loads"] * machine.load_hit_cycles
            + piece["flops"] * machine.flop_cycles
            + piece["intrinsics"] * machine.intrinsic_cycles
            + machine.loop_overhead_cycles
        )
        ref_slots += piece["loads"]
        for ref in stmt.rhs.array_refs():
            arrays.add(ref.name)
        # Redundancy-elimination scalars are loop-local values in the
        # element backends, but the slice backends materialize each one
        # as a region-sized temporary: count its def and every use so
        # the prior can charge that traffic where it is real.
        if stmt.is_contracted and is_cse_scalar(stmt.scalar_target):
            cse_slots += 1.0
        for node in stmt.rhs.walk():
            if isinstance(node, ScalarRef) and is_cse_scalar(node.name):
                cse_slots += 1.0
        if stmt.reduce_op is not None:
            compute += machine.flop_cycles  # the accumulate operation
        elif not stmt.is_contracted:
            compute += machine.store_cycles
            ref_slots += 1
            arrays.add(stmt.target)
    plan = shard_plan(nest, program.partial)
    sweep_bounds: Optional[Tuple[Tuple[int, int], ...]] = None
    serial_iterations = 1.0
    halo: Tuple[int, ...] = ()
    if plan.parallel and plan.shardable_dims:
        sweep_bounds = tuple(
            bounds[dim - 1] for dim in plan.shardable_dims
        )
        sweep_points = _points(sweep_bounds)
        serial_iterations = points / sweep_points if sweep_points else 1.0
        if plan.mode == "per-statement":
            # Statement-level barriers: each statement is its own sweep.
            serial_iterations *= max(1, len(nest.body))
        halo = tuple(plan.halo.get(dim, 0) for dim in plan.shardable_dims)
    return _NestProfile(
        points=points,
        compute_cycles=compute * points,
        ref_slots=ref_slots,
        cse_slots=cse_slots,
        distinct_arrays=max(1, len(arrays)),
        statements=len(nest.body),
        parallel=plan.parallel and sweep_bounds is not None,
        sweep_bounds=sweep_bounds,
        serial_iterations=serial_iterations,
        halo=halo,
    )


def _reduction_profile(
    node: ReductionLoop, layout: MemoryLayout, machine: MachineModel
) -> _NestProfile:
    try:
        bounds = node.region.concrete_bounds({})
    except Exception:
        bounds = tuple((1, UNKNOWN_TRIPS) for _ in node.region.dims)
    points = _points(bounds)
    piece = _expr_costs(node.operand, layout)
    compute = (
        piece["loads"] * machine.load_hit_cycles
        + (piece["flops"] + 1) * machine.flop_cycles
        + piece["intrinsics"] * machine.intrinsic_cycles
        + machine.loop_overhead_cycles
    )
    arrays = {ref.name for ref in node.operand.array_refs()}
    return _NestProfile(
        points=points,
        compute_cycles=compute * points,
        ref_slots=float(piece["loads"]),
        cse_slots=0.0,
        distinct_arrays=max(1, len(arrays)),
        statements=1,
        parallel=False,  # tiling a fold would reassociate it
        sweep_bounds=None,
        serial_iterations=1.0,
        halo=(),
    )


def _profiles(
    program: ScalarProgram, machine: MachineModel
) -> List[Tuple[_NestProfile, float]]:
    layout = MemoryLayout(program)
    out: List[Tuple[_NestProfile, float]] = []
    _collect_profiles(program.body, program, layout, 1.0, machine, out)
    return out


def predict_cost(
    program: ScalarProgram,
    plan: Plan,
    machine: Optional[MachineModel] = None,
    profiles: Optional[List[Tuple[_NestProfile, float]]] = None,
) -> float:
    """Predicted execution time of one plan, in microseconds.

    Raises :class:`~repro.util.errors.MachineError` when the plan is
    infeasible for this program (a forced tuple tile shape whose rank
    disagrees with a sweep) — enumeration uses that as a validity
    filter.  ``profiles`` lets callers amortize the static walk across
    the many plans that share one compiled program.
    """
    machine = machine or host_machine_model()
    if profiles is None:
        profiles = _profiles(program, machine)
    llc = machine.caches[-1]
    line_fraction = _line_fraction(machine)
    overhead_cycles = PER_POINT_OVERHEAD_CYCLES.get(plan.backend, 0.0)
    vectorized = plan.backend in ("codegen_np", "np-par")
    total_us = 0.0
    for profile, factor in profiles:
        cycles = profile.compute_cycles + overhead_cycles * profile.points
        # Hoisted-term scalars ride in registers for the element
        # backends but become region-sized temporaries in the slice
        # backends: the flops a hoist saves are already gone from
        # compute_cycles, so this is the opposing traffic term.
        ref_slots = profile.ref_slots
        if vectorized and profile.cse_slots:
            ref_slots += profile.cse_slots
            cycles += (
                profile.cse_slots * profile.points * machine.load_hit_cycles
            )
        # Whole-region, statement-at-a-time execution streams every
        # operand through memory once per statement.
        stream_bytes = profile.points * ref_slots * ELEM_BYTES
        misses = (
            profile.points * ref_slots * line_fraction
            if stream_bytes > llc.size
            else 0.0
        )
        extra_us = 0.0
        if vectorized:
            extra_us += profile.statements * VECTOR_STMT_OVERHEAD_US
        if plan.backend == "c":
            # Amortized share of the one-time cc invocation (cached
            # cross-process afterwards); spread across the nests so the
            # whole program is charged one compile, not one per nest.
            extra_us += NATIVE_COMPILE_US / (
                NATIVE_COMPILE_AMORTIZATION * max(1, len(profiles))
            )
        us_serial = machine.cycles_to_us(cycles + misses * llc.miss_penalty)
        if (
            plan.backend == "np-par"
            and profile.parallel
            and profile.sweep_bounds is not None
        ):
            workers = plan.workers or 1
            tiles = plan_tiles(profile.sweep_bounds, workers, plan.tile_shape)
            n_tiles = max(1, len(tiles))
            tile_points = _points(tiles[0]) if tiles else profile.points
            tile_bytes = tile_points * profile.distinct_arrays * ELEM_BYTES
            if tile_bytes <= llc.size and stream_bytes > llc.size:
                # Tile-at-a-time over a fused cluster: main-memory
                # traffic collapses to one pass per distinct array.
                misses = (
                    profile.points * profile.distinct_arrays * line_fraction
                )
            halo_us = 0.0
            if tiles and any(profile.halo):
                halo_loads = halo_elements(tiles[0], profile.halo) * n_tiles
                halo_us = machine.cycles_to_us(
                    halo_loads * (machine.load_hit_cycles + line_fraction * llc.miss_penalty)
                )
            us = machine.cycles_to_us(
                (cycles + misses * llc.miss_penalty) / workers
            )
            dispatch_us = (
                n_tiles
                * profile.serial_iterations
                * machine.comm.sw_overhead_us
            )
            total_us += (us + halo_us + dispatch_us + extra_us) * factor
        else:
            total_us += (us_serial + extra_us) * factor
    return total_us


def rank_plans(
    program: ScalarProgram,
    plans: Sequence[Plan],
    machine: Optional[MachineModel] = None,
) -> List[Tuple[Plan, float]]:
    """(plan, predicted microseconds) sorted ascending; infeasible plans
    (tile-shape rank mismatches) are silently dropped."""
    machine = machine or host_machine_model()
    profiles = _profiles(program, machine)
    ranked: List[Tuple[Plan, float]] = []
    for plan in plans:
        try:
            ranked.append(
                (plan, predict_cost(program, plan, machine, profiles))
            )
        except Exception:
            continue
    ranked.sort(key=lambda pair: pair[1])
    return ranked
