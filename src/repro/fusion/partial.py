"""Partial (rank-reducing) contraction — the paper's Section 5.2 extension.

The published algorithm contracts an array to a scalar or not at all, which
is why SP's compiled code keeps more arrays than the hand-written version:
its sweep-carried state could live in small *row buffers* ("Though the
resulting arrays cannot be manipulated in registers, they conserve memory
and make better use of the cache").  This module implements that extension:

An array ``x`` is **partially contractible along dimension k** with buffer
depth ``w + 1`` when

* every reference to ``x`` in the whole program lies in one basic block,
* every statement referencing ``x`` has a region *degenerate* in dimension
  ``k`` (a single row, e.g. ``[i, 1..m]``) with the same symbolic row
  expression, so the block sweeps ``x`` one row per iteration,
* reads of ``x`` have offset 0 in every dimension but ``k`` and offsets in
  ``[-w, 0]`` along ``k`` (the sweep consumes only the last ``w`` rows),
* the block defines row ``i`` of ``x`` (offset-0 write), so every row a
  read chases was produced within the last ``w`` iterations.

Storage then shrinks to ``w + 1`` rows addressed modulo the buffer depth —
a circular buffer that the scalarizer, interpreters, code generators and
the cache model all understand.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.program import IRProgram
from repro.ir.statement import ArrayStatement

#: name -> (dimension (1-based), buffer depth)
PartialMap = Dict[str, Tuple[int, int]]


def _degenerate_dims(stmt: ArrayStatement) -> List[int]:
    """1-based dimensions in which the statement's region is a single row."""
    return [
        dim
        for dim, (lo, hi) in enumerate(stmt.region.dims, start=1)
        if lo == hi
    ]


def partial_candidate(
    program: IRProgram, block: List[ArrayStatement], variable: str
) -> Optional[Tuple[int, int]]:
    """The ``(dim, depth)`` of a partial contraction of ``variable``, if legal."""
    info = program.arrays.get(variable)
    if info is None:
        return None
    if not program.refs_confined_to_block(variable, block):
        return None

    ref_stmts = [
        stmt
        for stmt in block
        if stmt.target == variable
        or any(ref.name == variable for ref in stmt.reads())
    ]
    writes = [stmt for stmt in ref_stmts if stmt.target == variable]
    if not writes:
        return None

    # A common degenerate dimension with a common symbolic row bound.
    common_dims: Optional[Set[int]] = None
    for stmt in ref_stmts:
        dims = set(_degenerate_dims(stmt))
        common_dims = dims if common_dims is None else common_dims & dims
    if not common_dims:
        return None

    for dim in sorted(common_dims):
        row_bounds = {stmt.region.dims[dim - 1][0] for stmt in ref_stmts}
        if len(row_bounds) != 1:
            continue
        row = next(iter(row_bounds))
        if row.is_constant:
            continue  # a fixed row needs no sweeping buffer
        depth = _max_lag(block, variable, dim)
        if depth is None:
            continue
        return (dim, depth + 1)
    return None


def _max_lag(
    block: List[ArrayStatement], variable: str, dim: int
) -> Optional[int]:
    """Largest ``w`` with reads at ``-w`` along ``dim``; None if illegal."""
    max_lag = 0
    for stmt in block:
        for ref in stmt.reads():
            if ref.name != variable:
                continue
            for d, component in enumerate(ref.offset, start=1):
                if d == dim:
                    if component > 0:
                        return None  # reads a row not yet produced
                    max_lag = max(max_lag, -component)
                elif component != 0:
                    return None  # cross-row AND cross-column reference
    return max_lag


def find_partial_contractions(
    program: IRProgram,
    block: List[ArrayStatement],
    exclude: Set[str],
) -> PartialMap:
    """All partial contractions available in ``block``.

    ``exclude`` holds arrays already fully contracted (scalars beat rows).
    """
    result: PartialMap = {}
    seen: List[str] = []
    for stmt in block:
        for name in stmt.referenced_arrays():
            if name not in seen:
                seen.append(name)
    for name in seen:
        if name in exclude:
            continue
        candidate = partial_candidate(program, block, name)
        if candidate is not None:
            result[name] = candidate
    return result


def buffer_bytes(
    program: IRProgram, variable: str, dim: int, depth: int
) -> int:
    """Bytes of the circular buffer replacing ``variable``."""
    region = program.arrays[variable].region
    total = 8 * depth
    for d, extent in enumerate(region.extents(), start=1):
        if d != dim:
            total *= extent.substitute({}).evaluate({})
    return total
