"""Statement fusion and array contraction at the array level."""

from repro.fusion.algorithm import (
    fuse_all_legal,
    fusion_for_contraction,
    fusion_for_locality,
)
from repro.fusion.contract import eligible_candidates, is_contractible
from repro.fusion.grow import grow, grown
from repro.fusion.loopstruct import find_loop_structure, structure_preserves
from repro.fusion.partition import FusionPartition
from repro.fusion.partial import (
    buffer_bytes,
    find_partial_contractions,
    partial_candidate,
)
from repro.fusion.pipeline import (
    ALL_LEVELS,
    C2P,
    BASELINE,
    BlockPlan,
    C1,
    C2,
    C2F3,
    C2F3CSE,
    C2F4,
    C2F4CSE,
    CSE_TWINS,
    F1,
    F2,
    F3,
    LEVELS_BY_NAME,
    PAPER_LEVELS,
    Level,
    ProgramPlan,
    plan_block,
    plan_program,
)
from repro.fusion.redundancy import (
    BlockCSE,
    CSEStats,
    eliminate_redundancies,
    is_cse_scalar,
)
from repro.fusion.weights import (
    contraction_benefit,
    reference_weight,
    weights_by_decreasing,
)

__all__ = [
    "ALL_LEVELS",
    "BASELINE",
    "BlockCSE",
    "BlockPlan",
    "C1",
    "C2",
    "C2F3",
    "C2F3CSE",
    "C2F4",
    "C2F4CSE",
    "C2P",
    "CSEStats",
    "CSE_TWINS",
    "F1",
    "F2",
    "F3",
    "FusionPartition",
    "LEVELS_BY_NAME",
    "PAPER_LEVELS",
    "Level",
    "ProgramPlan",
    "eliminate_redundancies",
    "is_cse_scalar",
    "buffer_bytes",
    "contraction_benefit",
    "find_partial_contractions",
    "partial_candidate",
    "eligible_candidates",
    "find_loop_structure",
    "fuse_all_legal",
    "fusion_for_contraction",
    "fusion_for_locality",
    "grow",
    "grown",
    "is_contractible",
    "plan_block",
    "plan_program",
    "reference_weight",
    "structure_preserves",
    "weights_by_decreasing",
]
