"""Reference weights (Section 3).

The *reference weight* ``w(x, G)`` of array ``x`` is the number of array
element references eliminated by contracting ``x``: the number of times it is
referenced at the array level times the region sizes over which those
references occur.  FUSION-FOR-CONTRACTION considers arrays in decreasing
weight order so that the largest single contributions to the total
*contraction benefit* are attempted first.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.deps.asdg import ASDG
from repro.ir.statement import ArrayStatement


def reference_weight(
    variable: str, graph: ASDG, config_env: Mapping[str, int]
) -> int:
    """``w(x, G)``: total element references to ``x`` in the block."""
    weight = 0
    for stmt in graph.statements:
        refs = 0
        if stmt.target == variable:
            refs += 1
        for ref in stmt.reads():
            if ref.name == variable:
                refs += 1
        if refs:
            weight += refs * stmt.region.static_size(config_env)
    return weight


def weights_by_decreasing(
    variables: List[str], graph: ASDG, config_env: Mapping[str, int]
) -> List[str]:
    """Variables sorted by decreasing weight (ties broken by block order).

    Deterministic tie-breaking keeps the optimizer reproducible: among equal
    weights, the variable first referenced earliest in the block comes first.
    """
    first_use = {name: i for i, name in enumerate(graph.variables())}
    return sorted(
        variables,
        key=lambda name: (-reference_weight(name, graph, config_env),
                          first_use.get(name, len(first_use))),
    )


def contraction_benefit(
    contracted: List[str], graph: ASDG, config_env: Mapping[str, int]
) -> int:
    """The total contraction benefit: sum of contracted reference weights."""
    return sum(reference_weight(name, graph, config_env) for name in contracted)
