"""The fusion algorithms: FUSION-FOR-CONTRACTION (Figure 3) and variants.

``fusion_for_contraction`` is the paper's greedy algorithm: consider arrays
in decreasing reference-weight order; for each, gather the clusters holding
its references, close them under GROW (no inter-cluster cycles), and merge if
the array is contractible (Definition 6) and the merge leaves a valid fusion
partition (Definition 5).

``fusion_for_locality`` is the identical algorithm with the CONTRACTIBLE?
test removed (Section 4.1): it fuses all statements referencing the array
with the greatest single locality benefit, exploiting inter-statement reuse.

``fuse_all_legal`` is the greedy pair-wise algorithm behind the ``c2+f4``
strategy: keep merging any legally fusible cluster pair until fixpoint.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, List, Mapping, Optional, Sequence, Set

from repro.fusion.contract import is_contractible
from repro.fusion.grow import grown
from repro.fusion.partition import FusionPartition
from repro.fusion.weights import weights_by_decreasing

MergeFilter = Callable[[Set[int], FusionPartition], bool]


def fusion_for_contraction(
    partition: FusionPartition,
    candidates: Sequence[str],
    config_env: Mapping[str, int],
    merge_filter: Optional[MergeFilter] = None,
) -> List[str]:
    """Fuse to enable contraction; returns arrays whose contraction is enabled.

    Mutates ``partition`` in place.  ``candidates`` are the arrays eligible
    for contraction (already filtered for liveness); ``merge_filter`` lets a
    caller veto merges (used by the communication-favoring policy of
    Section 5.5).
    """
    contracted: List[str] = []
    for variable in weights_by_decreasing(
        list(candidates), partition.graph, config_env
    ):
        clusters = partition.clusters_referencing(variable)
        if not clusters:
            continue
        clusters = grown(clusters, partition)
        if not is_contractible(variable, clusters, partition):
            continue
        if not partition.merge_is_fusion_partition(clusters):
            continue
        if merge_filter is not None and not merge_filter(clusters, partition):
            continue
        if len(clusters) > 1:
            partition.merge(clusters)
        contracted.append(variable)
    return contracted


def fusion_for_contraction_ranges(
    partition: FusionPartition,
    candidates,
    config_env: Mapping[str, int],
    merge_filter: Optional[MergeFilter] = None,
):
    """Figure 3 over live-range candidates (the footnote's refinement).

    Identical greedy structure to :func:`fusion_for_contraction`, but each
    candidate is one :class:`~repro.fusion.contract.RangeCandidate`: the
    clusters to fuse are those holding the *range's* statements, and
    CONTRACTIBLE? is checked per range.  Returns the contracted ranges.
    """
    from repro.fusion.contract import range_is_contractible
    from repro.fusion.weights import reference_weight

    def weight(candidate) -> int:
        total = 0
        for stmt in candidate.statements:
            refs = 1 if stmt.target == candidate.array else 0
            refs += sum(
                1 for ref in stmt.reads() if ref.name == candidate.array
            )
            total += refs * stmt.region.static_size(config_env)
        return total

    ordered = sorted(
        list(candidates),
        key=lambda c: (-weight(c), c.def_stmt.uid),
    )
    contracted = []
    for candidate in ordered:
        clusters = {
            partition.cluster_of(stmt) for stmt in candidate.statements
        }
        if not clusters:
            continue
        clusters = grown(clusters, partition)
        if not range_is_contractible(candidate, clusters, partition):
            continue
        if not partition.merge_is_fusion_partition(clusters):
            continue
        if merge_filter is not None and not merge_filter(clusters, partition):
            continue
        if len(clusters) > 1:
            partition.merge(clusters)
        contracted.append(candidate)
    return contracted


def fusion_for_locality(
    partition: FusionPartition,
    config_env: Mapping[str, int],
    merge_filter: Optional[MergeFilter] = None,
) -> List[str]:
    """Fuse for locality: Figure 3 without the CONTRACTIBLE? predicate.

    Returns the arrays whose references were brought into a single cluster
    (the locality analogue of the contraction benefit).
    """
    improved: List[str] = []
    variables = partition.graph.variables()
    for variable in weights_by_decreasing(variables, partition.graph, config_env):
        clusters = partition.clusters_referencing(variable)
        if len(clusters) <= 1:
            continue
        clusters = grown(clusters, partition)
        if not partition.merge_is_fusion_partition(clusters):
            continue
        if merge_filter is not None and not merge_filter(clusters, partition):
            continue
        partition.merge(clusters)
        improved.append(variable)
    return improved


def fuse_all_legal(
    partition: FusionPartition,
    merge_filter: Optional[MergeFilter] = None,
) -> int:
    """Greedy pair-wise fusion of every legally fusible cluster pair (f4).

    Returns the number of merges performed.
    """
    merges = 0
    changed = True
    while changed:
        changed = False
        for first, second in combinations(partition.cluster_ids(), 2):
            clusters = grown({first, second}, partition)
            if not partition.merge_is_fusion_partition(clusters):
                continue
            if merge_filter is not None and not merge_filter(clusters, partition):
                continue
            partition.merge(clusters)
            merges += 1
            changed = True
            break
    return merges
