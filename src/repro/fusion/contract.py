"""Contractibility (Definition 6) and contraction candidates.

An array ``x`` is contractible under a fusion partition iff

(i)  the source and target of every dependence due to ``x`` lie in the same
     fusible cluster (all references end up in a single loop nest), and
(ii) the UDVs of all dependences due to ``x`` are null vectors (no
     loop-carried dependences on ``x``).

Beyond Definition 6, an array may only be eliminated if its value does not
escape the basic block: the paper's fragments state "arrays B, T1 and T2 are
not live beyond the given code fragments"; for whole programs we compute this
(:meth:`repro.ir.program.IRProgram.refs_confined_to_block` and
:meth:`~repro.ir.program.IRProgram.first_ref_is_definition`).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.fusion.partition import FusionPartition
from repro.ir.program import IRProgram
from repro.ir.statement import ArrayStatement
from repro.util.vectors import is_zero


def is_contractible(
    variable: str, cluster_ids: Set[int], partition: FusionPartition
) -> bool:
    """CONTRACTIBLE?: Definition 6 against a hypothetical merged cluster.

    ``cluster_ids`` is the set of clusters about to be fused into one; the
    predicate holds iff every dependence due to ``variable`` has both ends in
    that set and a null UDV.
    """
    for source, target, label in partition.graph.dependences_on(variable):
        if (
            partition.cluster_of(source) not in cluster_ids
            or partition.cluster_of(target) not in cluster_ids
        ):
            return False
        if not is_zero(label.udv):
            return False
    # Every *reference* (not only every dependence) must be inside the
    # cluster: an array read by two statements has no dependence between
    # them, yet both reads must land in the single loop nest.
    referencing = partition.clusters_referencing(variable)
    return referencing <= set(cluster_ids)


def _definitely_nonnegative(expr) -> bool:
    return expr.is_constant and expr.const >= 0


def _contained(outer_region, inner_region, offset) -> bool:
    """Is ``inner_region + offset`` definitely contained in ``outer_region``?

    Conservative: symbolic bound differences that do not cancel answer
    False.  Degenerate dynamic dimensions (row ``i`` vs row ``i + d``)
    cancel exactly, which is the case that matters.
    """
    if outer_region.rank != inner_region.rank:
        return False
    for (olo, ohi), (ilo, ihi), off in zip(
        outer_region.dims, inner_region.dims, offset
    ):
        if not _definitely_nonnegative((ilo + off) - olo):
            return False
        if not _definitely_nonnegative(ohi - (ihi + off)):
            return False
    return True


def reads_covered_by_defs(
    variable: str, block: List[ArrayStatement]
) -> bool:
    """Every read of ``variable`` must be covered by a definition in ``block``.

    Contraction replaces the array with a scalar holding only the value of
    the *current* index point, so each read's accessed set must lie inside
    some same-instance definition's region.  This rejects row-sweep
    temporaries read at a row offset (``W@(-1,0)`` against a definition of
    row ``i``), whose reads reach the previous loop iteration even though
    the block's ASDG carries no dependence for them.
    """
    def_regions = [stmt.region for stmt in block if stmt.target == variable]
    for stmt in block:
        for ref in stmt.reads():
            if ref.name != variable:
                continue
            if not any(
                _contained(region, stmt.region, ref.offset)
                for region in def_regions
            ):
                return False
    return True


def eligible_candidates(
    program: IRProgram,
    block: List[ArrayStatement],
    include_user_arrays: bool,
) -> List[str]:
    """Arrays in ``block`` that liveness allows to be contracted.

    ``include_user_arrays`` False restricts to compiler temporaries (the
    ``c1`` strategy); True admits user arrays too (``c2``).  In both cases
    the array's references must be confined to the block and the block's
    first touch must be a definition (no values carried around an enclosing
    sequential loop).
    """
    graph_vars: List[str] = []
    for stmt in block:
        for name in stmt.referenced_arrays():
            if name not in graph_vars:
                graph_vars.append(name)

    result: List[str] = []
    for name in graph_vars:
        info = program.arrays.get(name)
        if info is None:
            continue
        if not info.is_temp and not include_user_arrays:
            continue
        if not program.refs_confined_to_block(name, block):
            continue
        if not program.first_ref_is_definition(name, block):
            continue
        if not reads_covered_by_defs(name, block):
            continue
        result.append(name)
    return result


class RangeCandidate:
    """One live range of an array definition — a contraction candidate.

    The paper's footnote to Figure 3: the algorithm "operates on array
    variable definitions, so that different references to the same array in
    disjoint live ranges can be optimized separately."  A range is the
    defining statement plus every read up to (not including) the next
    definition.  A middle range (fully killed by the next definition) can
    contract even when the array itself is live elsewhere; the last range
    can contract only if the array is dead outside the block.
    """

    __slots__ = ("array", "statements", "uids", "index", "is_last", "scalar")

    def __init__(
        self,
        array: str,
        statements: List[ArrayStatement],
        index: int,
        is_last: bool,
    ) -> None:
        self.array = array
        self.statements = statements
        self.uids = frozenset(stmt.uid for stmt in statements)
        self.index = index
        self.is_last = is_last
        suffix = "" if index == 0 else str(index + 1)
        self.scalar = "%s__s%s" % (array, suffix)

    @property
    def def_stmt(self) -> ArrayStatement:
        return self.statements[0]

    def __repr__(self) -> str:
        return "RangeCandidate(%s range %d, %d stmts%s)" % (
            self.array,
            self.index,
            len(self.statements),
            ", last" if self.is_last else "",
        )


def split_live_ranges(
    block: List[ArrayStatement], variable: str
) -> Tuple[bool, List[RangeCandidate]]:
    """Split ``variable``'s references in ``block`` into live ranges.

    Returns ``(has_incoming_reads, ranges)``: reads before the first
    definition consume the block's live-in value and belong to no candidate
    range.
    """
    ranges: List[List[ArrayStatement]] = []
    current: Optional[List[ArrayStatement]] = None
    has_incoming = False
    for stmt in block:
        if stmt.target == variable and stmt.writes_array:
            ranges.append([stmt])
            current = ranges[-1]
            continue
        if any(ref.name == variable for ref in stmt.reads()):
            if current is None:
                has_incoming = True
            else:
                current.append(stmt)
    candidates = [
        RangeCandidate(variable, stmts, index, index == len(ranges) - 1)
        for index, stmts in enumerate(ranges)
    ]
    return has_incoming, candidates


def _range_reads_covered(candidate: RangeCandidate) -> bool:
    """Reads within a range must lie inside its definition's index set."""
    def_region = candidate.def_stmt.region
    for stmt in candidate.statements:
        for ref in stmt.reads():
            if ref.name != candidate.array:
                continue
            if not _contained(def_region, stmt.region, ref.offset):
                return False
    return True


def _fully_killed_by_next(
    block: List[ArrayStatement], candidate: RangeCandidate
) -> bool:
    """Does the next definition of the array overwrite this range entirely?

    Required for a middle range: if the next definition covers only part of
    this range's index set, elements outside it still carry this range's
    values and may be observed later.
    """
    positions = {stmt.uid: i for i, stmt in enumerate(block)}
    my_def_pos = positions[candidate.def_stmt.uid]
    for stmt in block[my_def_pos + 1 :]:
        if stmt.target == candidate.array and stmt.writes_array:
            zero_off = (0,) * candidate.def_stmt.region.rank
            return _contained(stmt.region, candidate.def_stmt.region, zero_off)
    return False


def range_candidates(
    program: IRProgram,
    block: List[ArrayStatement],
    include_user_arrays: bool,
) -> List[RangeCandidate]:
    """All live-range contraction candidates in ``block``.

    Generalizes :func:`eligible_candidates`: an array defined several times
    yields one candidate per definition; middle ranges are eligible even if
    the array escapes the block, as long as the next definition fully kills
    them.
    """
    names: List[str] = []
    for stmt in block:
        for name in stmt.referenced_arrays():
            if name not in names:
                names.append(name)

    result: List[RangeCandidate] = []
    for name in names:
        info = program.arrays.get(name)
        if info is None:
            continue
        if not info.is_temp and not include_user_arrays:
            continue
        has_incoming, ranges = split_live_ranges(block, name)
        dead_outside = program.refs_confined_to_block(name, block)
        for candidate in ranges:
            if not _range_reads_covered(candidate):
                continue
            if candidate.is_last:
                # The final value survives the block (or the loop back
                # edge, when incoming reads consume it next iteration).
                if not dead_outside or has_incoming:
                    continue
            elif not _fully_killed_by_next(block, candidate):
                # A partially-killed middle range leaves observable
                # elements behind: its storage writes must stay.
                continue
            result.append(candidate)
    return result


def range_is_contractible(
    candidate: RangeCandidate,
    cluster_ids: Set[int],
    partition: FusionPartition,
) -> bool:
    """Definition 6 restricted to one live range.

    Every statement of the range must land in the merged cluster, and every
    dependence due to the array *within the range* must be a null vector.
    Dependences linking the range to other ranges (output dependences
    between definitions, anti dependences from earlier reads) disappear
    when the range's accesses become scalar and impose nothing here.
    """
    for stmt in candidate.statements:
        if partition.cluster_of(stmt) not in cluster_ids:
            return False
    for source, target, label in partition.graph.dependences_on(candidate.array):
        if source.uid in candidate.uids and target.uid in candidate.uids:
            if not is_zero(label.udv):
                return False
    return True


def contracted_rank(variable: str, partition: FusionPartition) -> int:
    """Rank after contraction: 0 (a scalar) in the all-or-nothing scheme.

    The paper contracts arrays all the way to scalars; SP's missed
    lower-dimensional contractions are reproduced as a deficiency (Section
    5.2).  The partial-contraction extension lives in
    :mod:`repro.fusion.partial`.
    """
    del variable, partition
    return 0
