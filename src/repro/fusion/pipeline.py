"""Optimization strategies: the paper's incremental levels (Section 5.4).

========  =============================================================
baseline  no fusion or contraction
f1        fusion to enable contraction of compiler arrays, no contraction
c1        f1 plus the compiler-array contraction is performed
f2        c1 plus fusion to enable user-array contraction, not performed
f3        c1 plus fusion for locality
c2        c1 plus user-array contraction is performed
c2+f3     c2 plus fusion for locality
c2+f4     c2+f3 plus all legal fusion (greedy pair-wise)
========  =============================================================

Each level plans every basic block of a program: it builds the ASDG, runs
the configured fusion passes, and records which arrays are actually
contracted.  The plans drive scalarization and the performance models.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.deps.analysis import build_asdg
from repro.fusion.algorithm import (
    MergeFilter,
    fuse_all_legal,
    fusion_for_contraction,
    fusion_for_locality,
)
from repro.fusion.contract import eligible_candidates
from repro.fusion.partition import FusionPartition
from repro.ir.program import IRProgram
from repro.ir.statement import ArrayStatement


class Level:
    """One optimization strategy configuration."""

    __slots__ = (
        "name",
        "fuse_compiler",
        "fuse_user",
        "contract_compiler",
        "contract_user",
        "fuse_locality",
        "fuse_all",
        "contract_partial",
        "cse",
    )

    def __init__(
        self,
        name: str,
        fuse_compiler: bool = False,
        fuse_user: bool = False,
        contract_compiler: bool = False,
        contract_user: bool = False,
        fuse_locality: bool = False,
        fuse_all: bool = False,
        contract_partial: bool = False,
        cse: bool = False,
    ) -> None:
        self.name = name
        self.fuse_compiler = fuse_compiler
        self.fuse_user = fuse_user
        self.contract_compiler = contract_compiler
        self.contract_user = contract_user
        self.fuse_locality = fuse_locality
        self.fuse_all = fuse_all
        self.contract_partial = contract_partial
        self.cse = cse

    def __repr__(self) -> str:
        return "Level(%s)" % self.name


BASELINE = Level("baseline")
F1 = Level("f1", fuse_compiler=True)
C1 = Level("c1", fuse_compiler=True, contract_compiler=True)
F2 = Level("f2", fuse_compiler=True, fuse_user=True, contract_compiler=True)
F3 = Level("f3", fuse_compiler=True, contract_compiler=True, fuse_locality=True)
C2 = Level(
    "c2",
    fuse_compiler=True,
    fuse_user=True,
    contract_compiler=True,
    contract_user=True,
)
C2F3 = Level(
    "c2+f3",
    fuse_compiler=True,
    fuse_user=True,
    contract_compiler=True,
    contract_user=True,
    fuse_locality=True,
)
C2F4 = Level(
    "c2+f4",
    fuse_compiler=True,
    fuse_user=True,
    contract_compiler=True,
    contract_user=True,
    fuse_locality=True,
    fuse_all=True,
)

#: Redundancy-elimination variants (not paper strategies): the fusion
#: levels that expose shared terms across fused statements, plus the
#: array-level CSE pass of :mod:`repro.fusion.redundancy`.
C2F3CSE = Level(
    "c2+f3+cse",
    fuse_compiler=True,
    fuse_user=True,
    contract_compiler=True,
    contract_user=True,
    fuse_locality=True,
    cse=True,
)
C2F4CSE = Level(
    "c2+f4+cse",
    fuse_compiler=True,
    fuse_user=True,
    contract_compiler=True,
    contract_user=True,
    fuse_locality=True,
    fuse_all=True,
    cse=True,
)

#: The Section 5.2 extension (not one of the paper's measured strategies):
#: c2+f3 plus partial contraction of sweep-carried arrays to row buffers.
C2P = Level(
    "c2+p",
    fuse_compiler=True,
    fuse_user=True,
    contract_compiler=True,
    contract_user=True,
    fuse_locality=True,
    contract_partial=True,
)

ALL_LEVELS: List[Level] = [
    BASELINE,
    F1,
    C1,
    F2,
    F3,
    C2,
    C2F3,
    C2F4,
    C2F3CSE,
    C2F4CSE,
]
LEVELS_BY_NAME: Dict[str, Level] = {level.name: level for level in ALL_LEVELS}

#: The paper's eight measured strategies (Section 5.4) — the evaluation
#: harness iterates these; the +cse variants are repo extensions.
PAPER_LEVELS: List[Level] = [BASELINE, F1, C1, F2, F3, C2, C2F3, C2F4]

#: Each +cse level's non-CSE twin (identical fusion/contraction flags).
CSE_TWINS: Dict[str, str] = {"c2+f3+cse": "c2+f3", "c2+f4+cse": "c2+f4"}


class BlockPlan:
    """The optimization outcome for one basic block.

    ``contracted`` holds arrays whose storage is *eliminated* (every live
    range contracted and no reference escapes the block);
    ``range_scalars`` maps ``(statement uid, array)`` to the scalar that
    replaces the array's access in that statement — per-live-range
    contraction can rewrite some definitions of an array while others keep
    writing storage (Figure 3's footnote).  ``cse``, when the level runs
    redundancy elimination, is the :class:`repro.fusion.redundancy.BlockCSE`
    holding per-cluster hoisted terms and rewritten right-hand sides.
    """

    __slots__ = (
        "block",
        "partition",
        "contracted",
        "partial",
        "range_scalars",
        "cse",
    )

    def __init__(
        self,
        block: List[ArrayStatement],
        partition: FusionPartition,
        contracted: Set[str],
        partial: Optional[Dict[str, tuple]] = None,
        range_scalars: Optional[Dict[tuple, str]] = None,
        cse=None,
    ) -> None:
        self.block = block
        self.partition = partition
        self.contracted = contracted
        self.partial = dict(partial or {})
        self.cse = cse
        if range_scalars is None:
            # Whole-array contraction (hand-built plans, tests): every
            # statement touching a contracted array uses its one scalar.
            range_scalars = {}
            for stmt in block:
                for name in contracted:
                    touches = (stmt.target == name and stmt.writes_array) or any(
                        ref.name == name for ref in stmt.reads()
                    )
                    if touches:
                        range_scalars[(stmt.uid, name)] = name + "__s"
        self.range_scalars = range_scalars

    @property
    def cluster_count(self) -> int:
        return self.partition.cluster_count()

    def __repr__(self) -> str:
        return "BlockPlan(%d stmts, %d clusters, contracted=%s)" % (
            len(self.block),
            self.cluster_count,
            sorted(self.contracted),
        )


class ProgramPlan:
    """Plans for every basic block of a program under one level."""

    def __init__(self, program: IRProgram, level: Level) -> None:
        self.program = program
        self.level = level
        self.block_plans: Dict[int, BlockPlan] = {}

    def plan_for(self, block: Sequence[ArrayStatement]) -> BlockPlan:
        return self.block_plans[block[0].uid]

    def add(self, plan: BlockPlan) -> None:
        self.block_plans[plan.block[0].uid] = plan

    def contracted_arrays(self) -> Set[str]:
        """All arrays eliminated by contraction anywhere in the program."""
        result: Set[str] = set()
        for plan in self.block_plans.values():
            result |= plan.contracted
        return result

    def partial_arrays(self) -> Dict[str, tuple]:
        """Arrays reduced to circular row buffers: name -> (dim, depth)."""
        result: Dict[str, tuple] = {}
        for plan in self.block_plans.values():
            result.update(plan.partial)
        return result

    def all_range_scalars(self) -> Dict[tuple, str]:
        """(statement uid, array) -> contraction scalar, program-wide."""
        result: Dict[tuple, str] = {}
        for plan in self.block_plans.values():
            result.update(plan.range_scalars)
        return result

    def live_arrays(self) -> List[str]:
        """Arrays that still require allocation after contraction."""
        contracted = self.contracted_arrays()
        return [name for name in self.program.arrays if name not in contracted]

    def cse_stats(self):
        """Aggregated redundancy-elimination statistics, or ``None``."""
        from repro.fusion.redundancy import CSEStats

        if not self.level.cse:
            return None
        stats = CSEStats()
        for plan in self.block_plans.values():
            if plan.cse is not None:
                stats = stats.merge(plan.cse.stats)
        return stats


def plan_block(
    program: IRProgram,
    block: List[ArrayStatement],
    level: Level,
    merge_filter: Optional[MergeFilter] = None,
    timers=None,
    block_ordinal: int = 0,
) -> BlockPlan:
    """Run the level's fusion passes over one basic block.

    ``timers``, when given, is a metrics object with a ``time(name)``
    context manager (see :class:`repro.service.metrics.Metrics`); the
    dependence analysis and the fusion/contraction passes are recorded
    under ``compile.deps`` and ``compile.fusion`` respectively.
    """
    from contextlib import nullcontext

    from repro.fusion.algorithm import fusion_for_contraction_ranges
    from repro.fusion.contract import range_candidates, split_live_ranges

    timed = timers.time if timers is not None else (lambda _name: nullcontext())

    config_env = program.config_env()
    with timed("compile.deps"):
        graph = build_asdg(block)
    partition = FusionPartition(graph)
    contracted: Set[str] = set()
    range_scalars: Dict[tuple, str] = {}

    with timed("compile.fusion"):
        if level.fuse_compiler or level.fuse_user:
            candidates = range_candidates(
                program, block, include_user_arrays=level.fuse_user
            )
            enabled = fusion_for_contraction_ranges(
                partition, candidates, config_env, merge_filter
            )
            applied_by_array: Dict[str, List] = {}
            for candidate in enabled:
                info = program.arrays[candidate.array]
                if info.is_temp and not level.contract_compiler:
                    continue
                if not info.is_temp and not level.contract_user:
                    continue
                applied_by_array.setdefault(candidate.array, []).append(candidate)
            for name, applied in applied_by_array.items():
                has_incoming, ranges = split_live_ranges(block, name)
                # An array's storage is eliminated when every one of its
                # ranges contracted and no reference enters or escapes the
                # block.
                eliminated = (
                    not has_incoming
                    and len(applied) == len(ranges)
                    and program.refs_confined_to_block(name, block)
                )
                for candidate in applied:
                    if candidate.is_last and not eliminated:
                        # The final range's value is the array's observable
                        # state: contract it only when the whole array goes.
                        continue
                    for stmt in candidate.statements:
                        range_scalars[(stmt.uid, name)] = candidate.scalar
                if eliminated:
                    contracted.add(name)

        if level.fuse_locality:
            fusion_for_locality(partition, config_env, merge_filter)

        if level.fuse_all:
            fuse_all_legal(partition, merge_filter)

        partial = None
        if level.contract_partial:
            from repro.fusion.partial import find_partial_contractions

            touched = {name for (_uid, name) in range_scalars}
            partial = find_partial_contractions(program, block, touched)

    cse = None
    if level.cse:
        from repro.fusion.redundancy import eliminate_redundancies

        with timed("compile.cse"):
            cse = eliminate_redundancies(
                partition, range_scalars, block_ordinal
            )

    return BlockPlan(block, partition, contracted, partial, range_scalars, cse)


def plan_program(
    program: IRProgram,
    level: Level,
    merge_filter: Optional[MergeFilter] = None,
    timers=None,
) -> ProgramPlan:
    """Plan every basic block of ``program`` under ``level``.

    ``timers`` is forwarded to :func:`plan_block` so a serving layer can
    meter the dependence and fusion passes separately.
    """
    plan = ProgramPlan(program, level)
    for ordinal, block in enumerate(program.blocks()):
        plan.add(
            plan_block(
                program, block, level, merge_filter, timers, ordinal
            )
        )
    return plan
