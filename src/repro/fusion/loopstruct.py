"""FIND-LOOP-STRUCTURE (Figure 4 of the paper).

Given the unconstrained distance vectors of a fusible cluster's
intra-cluster dependences, find a loop structure vector (Definition 4) —
a signed permutation of ``(1, ..., n)`` — such that every constrained
distance vector is lexicographically nonnegative.

The algorithm matches loops (outermost first) to array dimensions (lowest
first), so unconstrained dimensions leave the highest array dimension to the
innermost loop, exploiting spatial locality under row-major allocation.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence

from repro.util.vectors import IntVector, constrain, lex_nonnegative


def find_loop_structure(
    udvs: Iterable[IntVector], rank: int
) -> Optional[IntVector]:
    """Find a legal loop structure vector, or ``None`` (NOSOLUTION).

    ``udvs`` are the unconstrained distance vectors of all intra-cluster
    dependences; ``rank`` is the dimensionality of the cluster's region.
    Runs in O(n^2 * e) time, effectively O(e) since rank is tiny.
    """
    remaining: List[IntVector] = [tuple(u) for u in udvs]
    for u in remaining:
        if len(u) != rank:
            raise ValueError(
                "UDV %r has rank %d, expected %d" % (u, len(u), rank)
            )
    unassigned = [True] * rank  # b_j: array dimension j+1 not yet assigned
    structure: List[int] = []

    for _loop in range(rank):
        assigned = False
        for j in range(rank):
            if not unassigned[j]:
                continue
            direction = _direction_for_dimension(remaining, j)
            if direction == 0:
                continue
            unassigned[j] = False
            structure.append(direction * (j + 1))
            # Dependences carried by this loop no longer constrain inner loops.
            remaining = [u for u in remaining if u[j] == 0]
            assigned = True
            break
        if not assigned:
            return None  # NOSOLUTION: no dimension legal for this loop
    return tuple(structure)


def _direction_for_dimension(udvs: Sequence[IntVector], j: int) -> int:
    """The direction loop assignment rule from Figure 4, lines 5-6."""
    if all(u[j] >= 0 for u in udvs):
        return 1
    if all(u[j] <= 0 for u in udvs):
        # The 'some component negative' condition holds because the first
        # branch failed.
        return -1
    return 0


def carried_levels(
    structure: IntVector, udvs: Iterable[IntVector]
) -> FrozenSet[int]:
    """The loop levels (0-based, outermost first) that carry a dependence.

    A dependence with constrained distance vector ``d`` is *carried* by the
    outermost loop level at which ``d`` is non-zero; dependences with null
    constrained vectors (both endpoints in the same iteration) are carried by
    no loop.  Loops that carry no dependence iterate over independent index
    points and may be executed in any order — or as one whole-array
    operation, which is exactly the legality condition the vectorizing
    back end (:mod:`repro.scalarize.codegen_np`) needs.
    """
    levels = set()
    for u in udvs:
        d = constrain(u, structure)
        for level, component in enumerate(d):
            if component != 0:
                levels.add(level)
                break
    return frozenset(levels)


def serial_depth(structure: IntVector, udvs: Iterable[IntVector]) -> int:
    """How many outermost loops must stay serial to preserve all ``udvs``.

    Every dependence is preserved once the loop carrying it executes
    serially (outer iterations complete before later ones begin), so the
    loops below ``serial_depth`` — and the statements within one iteration
    of the serial prefix — can be executed as whole-slice operations.
    Returns 0 when no dependence is loop-carried (the entire nest is a
    dependence-free sweep).
    """
    levels = carried_levels(structure, udvs)
    return max(levels) + 1 if levels else 0


def structure_preserves(
    structure: IntVector, udvs: Iterable[IntVector]
) -> bool:
    """Check that constraining every UDV by ``structure`` is legal.

    Used as an independent validity oracle in tests: a loop structure vector
    preserves a dependence iff the constrained distance vector is
    lexicographically nonnegative (the source executes no later than the
    target in the generated loop nest).
    """
    return all(lex_nonnegative(constrain(u, structure)) for u in udvs)
