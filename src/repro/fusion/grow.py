"""The GROW closure from FUSION-FOR-CONTRACTION (Figure 3).

``GROW(c, G)`` returns the fusible clusters not in ``c`` that are reachable
by a dependence path from a cluster in ``c`` *and* have a dependence path to
a cluster in ``c`` — exactly the clusters that would sit on an
inter-fusible-cluster cycle if the clusters in ``c`` were fused.  Absorbing
them into the merge keeps the partition acyclic (condition (iii)).
"""

from __future__ import annotations

from typing import Set

from repro.fusion.partition import FusionPartition
from repro.util.graph import on_paths_between


def grow(cluster_ids: Set[int], partition: FusionPartition) -> Set[int]:
    """Clusters that must be absorbed to fuse ``cluster_ids`` without cycles."""
    edges = partition.cluster_graph()
    on_paths = on_paths_between(set(cluster_ids), set(cluster_ids), edges)
    return on_paths - set(cluster_ids)


def grown(cluster_ids: Set[int], partition: FusionPartition) -> Set[int]:
    """``cluster_ids`` together with their GROW closure (Figure 3, line 6)."""
    return set(cluster_ids) | grow(cluster_ids, partition)
