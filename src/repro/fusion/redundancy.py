"""Array-level redundancy elimination (CSE) over fused clusters.

Fusion and contraction eliminate *storage* traffic; this pass eliminates
redundant *computation* that fusion exposes.  Within one fusible cluster
every member statement evaluates over the same iteration space, so a
term ``f(A@d1, ..., s, Index_k)`` that appears (textually identical,
after contraction rewriting) in several member right-hand sides computes
the same value at every point of the cluster's region.  The pass
value-numbers such terms, hoists each profitable one into a
cluster-local scalar (an :class:`ElemAssign` with a scalar target —
exactly the shape a contracted statement already takes, so all four
emitters handle it with no new machinery), and replaces the occurrences
with a scalar read.

Value numbering is *offset-canonicalized*: two terms whose array
references differ by one constant shift share a value class (the recipe
of "Redundant Array Computation Elimination", arXiv 2506.21960).  A
class collapses to a single hoisted evaluation only where the shift is
zero — the dependence structure then proves the elements coincide
pointwise at every iteration.  Classes whose members are related by a
*non-zero* shift are reported in the statistics as cross-iteration reuse
candidates but are not rewritten: realizing them needs carried rotating
scalars, which would serialize the vectorized back ends (see
ALGORITHMS.md section 11).

Legality of a hoist (term ``T`` with occurrences in member statements
``i <= ... <= j`` of one cluster):

1. ``T`` reads no array written by the cluster.  This makes ``T``
   loop-invariant with respect to the cluster's own stores, so the hoist
   is valid under element order (interp/codegen_py), under whole-region
   statement order (codegen_np) and under tile-distributed execution
   with corner restore (np-par) alike.
2. No scalar read by ``T`` is (re)defined by a member statement between
   the first occurrence and a reused occurrence; occurrences past the
   first such definition simply stay inline (a later round may hoist
   them again separately).
3. The rewrite must not degrade the tile sharding: a cluster that reads
   one of its own arrays at a non-zero offset shards per-statement, and
   introducing the *first* scalar-target statement into such a nest
   would force it serial — those clusters are skipped unless they
   already carry contracted statements.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from repro.ir import expr as ir
from repro.ir.statement import ArrayStatement, ReductionStatement
from repro.util.vectors import is_zero

#: A hoist must save at least this many operation evaluations per index
#: point: ``(uses - 1) * op_count >= MIN_SAVED_OPS``.  At 2, a one-op
#: term used twice (saving a single add) is not worth the scalar
#: traffic, while a 2-op stencil sum used twice (or a one-op term used
#: three times) is.
MIN_SAVED_OPS = 2

#: Prefix for hoisted-term scalars.  Underscore-prefixed state is
#: compiler-internal by convention (``_red*`` reduction temporaries,
#: ``*__s`` contraction scalars) and excluded from observable-state
#: comparisons.
CSE_SCALAR_PREFIX = "_cse"


def is_cse_scalar(name: str) -> bool:
    """True for scalars introduced by redundancy elimination."""
    return name.startswith(CSE_SCALAR_PREFIX)


class HoistedTerm(NamedTuple):
    """One hoisted term: evaluate ``rhs`` into ``scalar`` once per point,
    immediately before statement ``before_uid``."""

    scalar: str
    rhs: ir.IRExpr
    before_uid: int
    uses: int
    saved_ops: int


class ClusterCSE(NamedTuple):
    """Redundancy-elimination outcome for one fusible cluster."""

    hoists: List[HoistedTerm]
    rewritten: Dict[int, ir.IRExpr]  # statement uid -> rewritten rhs


class CSEStats(NamedTuple):
    """Block-level accounting (drives the cost prior and the bench)."""

    clusters_scanned: int = 0
    clusters_skipped: int = 0
    terms_hoisted: int = 0
    uses_replaced: int = 0
    saved_ops_per_point: int = 0
    value_classes: int = 0
    shifted_classes: int = 0

    def merge(self, other: "CSEStats") -> "CSEStats":
        return CSEStats(*(a + b for a, b in zip(self, other)))


class BlockCSE:
    """Per-cluster hoists and rewritten right-hand sides for one block."""

    __slots__ = ("clusters", "stats")

    def __init__(
        self, clusters: Dict[int, ClusterCSE], stats: CSEStats
    ) -> None:
        self.clusters = clusters
        self.stats = stats

    def for_cluster(self, cluster_id: int) -> Optional[ClusterCSE]:
        return self.clusters.get(cluster_id)

    def __repr__(self) -> str:
        return "BlockCSE(%d clusters, %d terms, %d ops/point saved)" % (
            len(self.clusters),
            self.stats.terms_hoisted,
            self.stats.saved_ops_per_point,
        )


# -- value numbering ---------------------------------------------------------


def _key(expr: ir.IRExpr) -> Tuple:
    """A structural key: equal keys <=> identical terms (dtype-exact).

    ``Const(1)``, ``Const(1.0)`` and ``Const(True)`` must not share a
    key — they promote differently — hence the value's type is part of
    the key.
    """
    if isinstance(expr, ir.Const):
        return ("c", type(expr.value).__name__, repr(expr.value))
    if isinstance(expr, ir.ScalarRef):
        return ("s", expr.name)
    if isinstance(expr, ir.ArrayRef):
        return ("a", expr.name, expr.offset)
    if isinstance(expr, ir.IndexRef):
        return ("i", expr.dim)
    if isinstance(expr, ir.BinOp):
        return ("b", expr.op, _key(expr.left), _key(expr.right))
    if isinstance(expr, ir.UnOp):
        return ("u", expr.op, _key(expr.operand))
    if isinstance(expr, ir.Call):
        return ("f", expr.name) + tuple(_key(arg) for arg in expr.args)
    # Reduce (or future nodes): opaque, never value-numbered.
    return ("opaque", id(expr))


def _canonical_key(expr: ir.IRExpr) -> Tuple:
    """The shift-canonicalized key: offsets relative to the term's first
    array reference, so ``A@(0,1) + B@(0,0)`` and ``A@(1,1) + B@(1,0)``
    share a value class (they read the same elements one iteration
    apart)."""
    refs = expr.array_refs()
    if not refs:
        return _key(expr)
    base = refs[0].offset

    def visit(node: ir.IRExpr) -> Optional[ir.IRExpr]:
        if isinstance(node, ir.ArrayRef):
            delta = tuple(o - b for o, b in zip(node.offset, base))
            return ir.ArrayRef(node.name, delta)
        return None

    return _key(expr.map(visit))


def _replace_key(expr: ir.IRExpr, key: Tuple, repl: ir.IRExpr) -> ir.IRExpr:
    """Top-down replacement of every subtree matching ``key``.

    Top-down, not :meth:`IRExpr.map` (bottom-up): rewriting an inner
    occurrence first would destroy the match of an enclosing one.
    """
    if _key(expr) == key:
        return repl
    children = list(expr.children())
    if not children:
        return expr
    new_children = [_replace_key(child, key, repl) for child in children]
    if all(new is old for new, old in zip(new_children, children)):
        return expr
    return expr._rebuild(new_children)


# -- per-cluster analysis ----------------------------------------------------


class _Entry:
    """One statement of the working body: a cluster member or a hoist."""

    __slots__ = ("uid", "rhs", "scalar_def", "hoist")

    def __init__(self, uid, rhs, scalar_def, hoist=None):
        self.uid = uid
        self.rhs = rhs
        self.scalar_def = scalar_def
        self.hoist = hoist  # (scalar, uses, saved_ops) for hoist entries


class _Candidate(NamedTuple):
    key: Tuple
    expr: ir.IRExpr
    positions: List[int]  # entry index of every legal occurrence
    saved: int


def _rewrite_contracted(
    stmt: ArrayStatement, range_scalars: Dict[tuple, str]
) -> Optional[ir.IRExpr]:
    """The statement's rhs with contracted-range reads as scalars, or
    ``None`` when a contracted read is offset (scalarization will reject
    the plan; redundancy elimination stays out of the way)."""
    bad = []

    def visit(node: ir.IRExpr) -> Optional[ir.IRExpr]:
        if isinstance(node, ir.ArrayRef):
            scalar = range_scalars.get((stmt.uid, node.name))
            if scalar is not None:
                if not is_zero(node.offset):
                    bad.append(node)
                    return None
                return ir.ScalarRef(scalar)
        return None

    rewritten = stmt.rhs.map(visit)
    return None if bad else rewritten


def _candidates(
    entries: List[_Entry],
    written_arrays: Set[str],
) -> List[_Candidate]:
    occurrences: Dict[Tuple, List[Tuple[int, ir.IRExpr]]] = {}
    for pos, entry in enumerate(entries):
        for node in entry.rhs.walk():
            if not isinstance(node, (ir.BinOp, ir.UnOp, ir.Call)):
                continue
            if isinstance(node, ir.Reduce):
                continue
            occurrences.setdefault(_key(node), []).append((pos, node))

    result: List[_Candidate] = []
    for key, occs in occurrences.items():
        if len(occs) < 2:
            continue
        expr = occs[0][1]
        if any(ref.name in written_arrays for ref in expr.array_refs()):
            continue
        scalar_reads = {ref.name for ref in expr.scalar_refs()}
        first_pos = occs[0][0]
        legal = [first_pos]
        barrier = None
        for pos, _node in occs[1:]:
            if barrier is None:
                for between in range(max(legal[-1], first_pos), pos):
                    defined = entries[between].scalar_def
                    if defined is not None and defined in scalar_reads:
                        barrier = between
                        break
            if barrier is not None and pos > barrier:
                break
            legal.append(pos)
        if len(legal) < 2:
            continue
        saved = (len(legal) - 1) * expr.op_count()
        if saved < MIN_SAVED_OPS:
            continue
        result.append(_Candidate(key, expr, legal, saved))
    return result


def _eliminate_cluster(
    members: List[ArrayStatement],
    range_scalars: Dict[tuple, str],
    name_fn,
) -> Tuple[Optional[ClusterCSE], CSEStats]:
    entries: List[_Entry] = []
    written_arrays: Set[str] = set()
    has_contracted = False
    offset_self_read = False

    for stmt in members:
        rhs = _rewrite_contracted(stmt, range_scalars)
        if rhs is None:
            return None, CSEStats(clusters_scanned=1, clusters_skipped=1)
        if isinstance(stmt, ReductionStatement):
            scalar_def = stmt.scalar_target
            has_contracted = True
        else:
            scalar_def = range_scalars.get((stmt.uid, stmt.target))
            if scalar_def is not None:
                has_contracted = True
            else:
                written_arrays.add(stmt.target)
        entries.append(_Entry(stmt.uid, rhs, scalar_def))

    for entry in entries:
        for ref in entry.rhs.array_refs():
            if ref.name in written_arrays and not is_zero(ref.offset):
                offset_self_read = True

    # Shift-canonical value classes (reported, not rewritten; see module
    # docstring) — computed before any rewriting so the statistics
    # describe the source cluster.
    classes: Dict[Tuple, Set[Tuple]] = {}
    for entry in entries:
        for node in entry.rhs.walk():
            if isinstance(node, (ir.BinOp, ir.UnOp, ir.Call)):
                classes.setdefault(_canonical_key(node), set()).add(_key(node))
    value_classes = sum(1 for keys in classes.values() if len(keys) >= 1)
    shifted_classes = sum(1 for keys in classes.values() if len(keys) >= 2)

    stats = CSEStats(
        clusters_scanned=1,
        value_classes=value_classes,
        shifted_classes=shifted_classes,
    )

    if offset_self_read and not has_contracted:
        # Hoisting would introduce the first scalar-target statement into
        # a nest that shards per-statement, forcing it serial (legality
        # rule 3).  Not worth it: skip the cluster.
        return None, stats._replace(clusters_skipped=1)

    while True:
        candidates = _candidates(entries, written_arrays)
        if not candidates:
            break
        best = max(candidates, key=lambda c: (c.saved, -c.positions[0]))
        scalar = name_fn()
        repl = ir.ScalarRef(scalar)
        first, last = best.positions[0], best.positions[-1]
        for pos in range(first, last + 1):
            entries[pos].rhs = _replace_key(entries[pos].rhs, best.key, repl)
        entries.insert(
            first,
            _Entry(
                None,
                best.expr,
                scalar,
                hoist=(scalar, len(best.positions), best.saved),
            ),
        )
        stats = stats._replace(
            terms_hoisted=stats.terms_hoisted + 1,
            uses_replaced=stats.uses_replaced + len(best.positions),
            saved_ops_per_point=stats.saved_ops_per_point + best.saved,
        )

    if stats.terms_hoisted == 0:
        return None, stats

    hoists: List[HoistedTerm] = []
    rewritten: Dict[int, ir.IRExpr] = {}
    pending: List[_Entry] = []
    for entry in entries:
        if entry.hoist is not None:
            pending.append(entry)
            continue
        for hoist_entry in pending:
            scalar, uses, saved = hoist_entry.hoist
            hoists.append(
                HoistedTerm(scalar, hoist_entry.rhs, entry.uid, uses, saved)
            )
        pending = []
        rewritten[entry.uid] = entry.rhs
    # pending cannot be non-empty here: a hoist is always inserted at the
    # position of a real occurrence, so a real entry follows it.
    return ClusterCSE(hoists, rewritten), stats


# -- block driver ------------------------------------------------------------


def eliminate_redundancies(
    partition, range_scalars, block_ordinal: int = 0
) -> BlockCSE:
    """Run redundancy elimination over every cluster of one block.

    ``partition`` is the block's :class:`FusionPartition` after all
    fusion passes; ``range_scalars`` the contraction outcome
    (``(statement uid, array) -> scalar``); ``block_ordinal`` the
    block's position in the program, making hoist-scalar names a pure
    function of (source, level) — statement uids are process-global and
    would break generated-code determinism (and with it the compile
    cache's fingerprinting).  Returns a :class:`BlockCSE` consumed by
    the scalarizer.
    """
    clusters: Dict[int, ClusterCSE] = {}
    stats = CSEStats()
    counter = [0]

    def name_fn() -> str:
        name = "%s%d_%d" % (CSE_SCALAR_PREFIX, block_ordinal, counter[0])
        counter[0] += 1
        return name

    for cluster_id in partition.cluster_order():
        members = partition.statement_order(cluster_id)
        if len(members) == 0:
            continue
        cluster_cse, cluster_stats = _eliminate_cluster(
            members, range_scalars, name_fn
        )
        stats = stats.merge(cluster_stats)
        if cluster_cse is not None:
            clusters[cluster_id] = cluster_cse
    return BlockCSE(clusters, stats)
