"""Fusion partitions (Definition 5).

A fusion partition groups the statements of an ASDG into *fusible clusters*.
Upon scalarization each cluster becomes a single loop nest.  The conditions:

(i)   all statements in a cluster operate under the same region;
(ii)  intra-cluster **flow** dependences have null UDVs (loop-carried flow
      dependences would inhibit parallelism);
(iii) there are no inter-cluster cycles;
(iv)  a loop structure vector exists for the cluster that preserves all
      intra-cluster dependences (decided by FIND-LOOP-STRUCTURE).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.deps.asdg import ASDG, DepType
from repro.fusion.loopstruct import find_loop_structure
from repro.ir.statement import ArrayStatement
from repro.util.errors import FusionError
from repro.util.graph import has_cycle, topological_sort
from repro.util.vectors import IntVector, identity_loop_structure, is_zero


class FusionPartition:
    """A partition of an ASDG's statements into fusible clusters.

    Clusters are identified by integer ids; statements keep their block
    order within a cluster.  The partition object is mutable (the fusion
    algorithms merge clusters in place) but always maps every statement to
    exactly one cluster.
    """

    def __init__(self, graph: ASDG) -> None:
        self.graph = graph
        # Trivial partition: one cluster per statement.
        self._cluster_of: Dict[int, int] = {
            stmt.uid: i for i, stmt in enumerate(graph.statements)
        }
        self._members: Dict[int, List[ArrayStatement]] = {
            i: [stmt] for i, stmt in enumerate(graph.statements)
        }

    # -- queries --------------------------------------------------------

    def cluster_ids(self) -> List[int]:
        return sorted(self._members)

    def cluster_count(self) -> int:
        return len(self._members)

    def cluster_of(self, stmt: ArrayStatement) -> int:
        return self._cluster_of[stmt.uid]

    def members(self, cluster_id: int) -> List[ArrayStatement]:
        return list(self._members[cluster_id])

    def clusters(self) -> List[List[ArrayStatement]]:
        return [self.members(cid) for cid in self.cluster_ids()]

    def clusters_referencing(self, variable: str) -> Set[int]:
        """Ids of clusters containing a reference to ``variable``."""
        return {
            self._cluster_of[stmt.uid]
            for stmt in self.graph.statements_referencing(variable)
        }

    def intra_cluster_udvs(self, cluster_ids: Iterable[int]) -> List[
        Tuple[str, IntVector, DepType]
    ]:
        """All dependences whose source and target both lie in ``cluster_ids``.

        Returns ``(variable, udv, type)`` tuples; used to decide conditions
        (ii) and (iv) for a hypothetical merged cluster.
        """
        ids = set(cluster_ids)
        result = []
        for source, target, labels in self.graph.edges():
            if (
                self._cluster_of[source.uid] in ids
                and self._cluster_of[target.uid] in ids
            ):
                for label in labels:
                    result.append((label.variable, label.udv, label.type))
        for stmt in self.graph.statements:
            if self._cluster_of[stmt.uid] in ids:
                for label in self.graph.self_labels(stmt):
                    result.append((label.variable, label.udv, label.type))
        return result

    def cluster_graph(self) -> Dict[int, Set[int]]:
        """The quotient graph: edges between distinct clusters."""
        edges: Dict[int, Set[int]] = {cid: set() for cid in self._members}
        for source, target, _labels in self.graph.edges():
            src_cluster = self._cluster_of[source.uid]
            dst_cluster = self._cluster_of[target.uid]
            if src_cluster != dst_cluster:
                edges[src_cluster].add(dst_cluster)
        return edges

    # -- validity (Definition 5) -------------------------------------------

    def merge_is_fusion_partition(self, cluster_ids: Set[int]) -> bool:
        """FUSION-PARTITION?: would merging ``cluster_ids`` stay valid?

        Checks conditions (i), (ii) and (iv) for the merged cluster and
        condition (iii) for the whole partition.  (The caller is expected to
        have applied GROW, which makes fresh cycles impossible, but the check
        is performed anyway for safety.)
        """
        if not cluster_ids:
            return True
        merged: List[ArrayStatement] = []
        for cid in cluster_ids:
            merged.extend(self._members[cid])

        # (i) common region.
        regions = {stmt.region for stmt in merged}
        if len(regions) > 1:
            return False

        deps = self.intra_cluster_udvs(cluster_ids)

        # (ii) intra-cluster flow dependences must be null vectors; scalar
        # dependences (through a fused reduction's result) can never be
        # carried by a loop, so their endpoints may not share a cluster.
        for _var, udv, dep_type in deps:
            if dep_type is DepType.SCALAR:
                return False
            if dep_type is DepType.FLOW and not is_zero(udv):
                return False

        # (iv) a loop structure vector must exist.
        rank = merged[0].region.rank
        vector_deps = [udv for _v, udv, t in deps if t is not DepType.SCALAR]
        if find_loop_structure(vector_deps, rank) is None:
            return False

        # (iii) no inter-cluster cycles after the merge.
        return not self._merge_creates_cycle(cluster_ids)

    def _merge_creates_cycle(self, cluster_ids: Set[int]) -> bool:
        edges = self.cluster_graph()
        representative = min(cluster_ids)
        merged_edges: Dict[int, Set[int]] = {}
        for cid, succs in edges.items():
            new_cid = representative if cid in cluster_ids else cid
            new_succs = {
                representative if succ in cluster_ids else succ for succ in succs
            }
            new_succs.discard(new_cid)
            merged_edges.setdefault(new_cid, set()).update(new_succs)
        return has_cycle(list(merged_edges), merged_edges)

    def is_valid(self) -> bool:
        """Check the full Definition 5 for the current partition."""
        for cid in self.cluster_ids():
            if not self.merge_is_fusion_partition({cid}):
                return False
        return True

    # -- mutation ----------------------------------------------------------

    def merge(self, cluster_ids: Set[int]) -> int:
        """Merge clusters into the one with the smallest id; returns that id."""
        if not cluster_ids:
            raise FusionError("cannot merge an empty set of clusters")
        target = min(cluster_ids)
        merged: List[ArrayStatement] = []
        for cid in sorted(cluster_ids):
            merged.extend(self._members.pop(cid) if cid != target else [])
        # Keep block order within the merged cluster.
        survivors = self._members[target] + merged
        survivors.sort(key=self.graph.position)
        self._members[target] = survivors
        for stmt in survivors:
            self._cluster_of[stmt.uid] = target
        return target

    # -- scalarization support ------------------------------------------------

    def cluster_order(self) -> List[int]:
        """Cluster ids in a dependence-respecting execution order."""
        edges = self.cluster_graph()
        return topological_sort(self.cluster_ids(), edges)

    def statement_order(self, cluster_id: int) -> List[ArrayStatement]:
        """Statements of a cluster in a dependence-respecting order.

        Statements keep block order, which is always a valid topological
        order of the intra-cluster dependence subgraph (ASDG edges point
        forward).
        """
        return self.members(cluster_id)

    def loop_structure(self, cluster_id: int) -> IntVector:
        """The loop structure vector for a cluster (Definition 4).

        Falls back to the identity (row-major forward loops) when the
        cluster has no constraining dependences.
        """
        members = self._members[cluster_id]
        rank = members[0].region.rank
        deps = [
            (v, udv, t)
            for v, udv, t in self.intra_cluster_udvs({cluster_id})
            if t is not DepType.SCALAR
        ]
        structure = find_loop_structure([udv for _v, udv, _t in deps], rank)
        if structure is None:
            raise FusionError(
                "cluster %d has no legal loop structure (invalid partition)"
                % cluster_id
            )
        if not deps:
            return identity_loop_structure(rank)
        return structure

    def render(self) -> str:
        lines = ["FusionPartition (%d clusters)" % self.cluster_count()]
        for cid in self.cluster_order():
            lines.append("  cluster %d:" % cid)
            for stmt in self.members(cid):
                lines.append("    %s" % stmt)
        return "\n".join(lines)
