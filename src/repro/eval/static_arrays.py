"""Figure 7: static arrays contracted, per benchmark.

For each application: the number of static arrays in the compiled code
without contraction (split compiler/user), with contraction (``c2``), the
percent change, and the array count of the equivalent hand-written
scalar-language program (the paper's published number; Fibro has none).

The ports are reduced-scale (the paper's SP has 181 static arrays; ours
keeps the same *structure* at kernel scale), so the harness prints measured
and published values side by side.  The qualitative claims under test:
every compiler temporary is eliminated; EP loses all arrays; SP is the one
code that keeps more arrays than its scalar equivalent.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.benchsuite.registry import ALL_BENCHMARKS, Benchmark
from repro.fusion.pipeline import C2, plan_program
from repro.util.tables import render_table


class StaticArrayRow:
    """One benchmark's Figure 7 measurements."""

    def __init__(self, bench: Benchmark) -> None:
        program = bench.program()
        plan = plan_program(program, C2)
        self.name = bench.name
        self.compiler_before = len(program.compiler_arrays())
        self.user_before = len(program.user_arrays())
        self.before = self.compiler_before + self.user_before
        self.after = len(plan.live_arrays())
        contracted = plan.contracted_arrays()
        self.compiler_contracted = sum(
            1 for name in contracted if program.arrays[name].is_temp
        )
        self.surviving = sorted(plan.live_arrays())
        self.paper_before = bench.paper["static_before"]
        self.paper_before_compiler = bench.paper["static_before_compiler"]
        self.paper_after = bench.paper["static_after"]
        self.scalar_language = bench.paper["scalar_language_arrays"]

    @property
    def percent_change(self) -> float:
        return 100.0 * (self.after - self.before) / self.before

    @property
    def all_compiler_temps_eliminated(self) -> bool:
        return self.compiler_contracted == self.compiler_before


def figure7_rows(
    benchmarks: Optional[List[Benchmark]] = None,
) -> List[StaticArrayRow]:
    return [StaticArrayRow(bench) for bench in benchmarks or ALL_BENCHMARKS]


def render_figure7(rows: Optional[List[StaticArrayRow]] = None) -> str:
    rows = rows or figure7_rows()
    headers = [
        "application",
        "w/o contr (comp/user)",
        "w/ contr",
        "% change",
        "scalar lang (paper)",
        "paper w/o",
        "paper w/",
    ]
    table_rows: List[List[object]] = []
    for row in rows:
        table_rows.append(
            [
                row.name,
                "%d (%d/%d)" % (row.before, row.compiler_before, row.user_before),
                row.after,
                row.percent_change,
                row.scalar_language,
                "%d (%d/%d)"
                % (
                    row.paper_before,
                    row.paper_before_compiler,
                    row.paper_before - row.paper_before_compiler,
                ),
                row.paper_after,
            ]
        )
    return render_table(
        headers, table_rows, title="Figure 7: static arrays contracted"
    )
