"""One-shot reproduction report: every paper artifact in a single document.

``generate_report()`` regenerates Figure 6 (compiler behaviour), Figure 7
(static arrays), Figure 8 (problem-size scaling), a runtime panel per
machine (Figures 9-11) and the Section 5.5 interaction study, and stitches
them into one text report.  The ``fast`` profile shrinks problem sizes and
processor counts so the whole report builds in tens of seconds; the
``full`` profile matches the benchmark harnesses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.compilers import render_figure6
from repro.eval.comm_interaction import interaction_sweep, render_interaction
from repro.eval.memory import figure8_rows, render_figure8
from repro.eval.runtime import render_runtime_figure, runtime_sweep
from repro.eval.static_arrays import figure7_rows, render_figure7
from repro.machine import ALL_MACHINES

PROFILES: Dict[str, Dict[str, object]] = {
    "fast": {
        "runtime_config": {"n": 32, "m": 32},
        "processor_counts": (1, 16),
        "sample_iterations": 1,
        "budget_bytes": 2 * 1024 * 1024,
        "machines": ALL_MACHINES[:1],
        "interaction_p": 16,
    },
    "full": {
        "runtime_config": None,
        "processor_counts": (1, 4, 16, 64),
        "sample_iterations": 2,
        "budget_bytes": 4 * 1024 * 1024,
        "machines": ALL_MACHINES,
        "interaction_p": 16,
    },
}


def generate_report(profile: str = "fast") -> str:
    """Build the consolidated reproduction report."""
    if profile not in PROFILES:
        raise ValueError(
            "unknown profile %r (have: %s)" % (profile, ", ".join(PROFILES))
        )
    settings = PROFILES[profile]
    sections: List[str] = [
        "REPRODUCTION REPORT",
        "Lewis, Lin & Snyder: The Implementation and Evaluation of Fusion",
        "and Contraction in Array Languages (PLDI 1998)",
        "profile: %s" % profile,
        "",
    ]

    sections.append(render_figure6())
    sections.append("")
    sections.append(render_figure7(figure7_rows()))
    sections.append("")
    sections.append(
        render_figure8(figure8_rows(budget_bytes=settings["budget_bytes"]))
    )
    sections.append("")

    interaction_results = {}
    for machine in settings["machines"]:
        results = runtime_sweep(
            machine,
            processor_counts=settings["processor_counts"],
            config=settings["runtime_config"],
            sample_iterations=settings["sample_iterations"],
        )
        sections.append(
            render_runtime_figure(
                machine, results, processor_counts=settings["processor_counts"]
            )
        )
        sections.append("")
        interaction_results[machine.name] = interaction_sweep(
            machine,
            p=settings["interaction_p"],
            config=settings["runtime_config"],
            sample_iterations=settings["sample_iterations"],
        )

    sections.append(render_interaction(interaction_results))
    return "\n".join(sections)
