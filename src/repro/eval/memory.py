"""Figure 8: effect of contraction on the maximum achievable problem size.

Section 5.3's model: with all arrays the same size and a fixed memory
budget, the maximum problem size is inversely proportional to the number of
simultaneously live arrays ``l``; contraction scales the achievable problem
*volume* by ``l_b / l_a``, i.e. a percent change of
``C(l_b, l_a) = 100 * (l_b/l_a - 1)``.

The experimental side reproduces the paper's methodology: find, by search,
the largest problem size whose total array allocation fits a fixed byte
budget (the paper used the OS process-size limit of single T3E/SP-2 nodes;
we use a configurable budget), with and without contraction, and compare
the measured volume change against the analytic ``C``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.benchsuite.registry import ALL_BENCHMARKS, Benchmark
from repro.fusion.pipeline import BASELINE, C2, Level, plan_program
from repro.ir.program import IRProgram
from repro.util.tables import render_table

_ELEM_BYTES = 8

#: Default budget: large enough for interesting sizes, small enough that
#: the search stays fast.  (The paper's machines allowed 256 MB/node.)
DEFAULT_BUDGET_BYTES = 8 * 1024 * 1024


def allocated_bytes(program: IRProgram, live_arrays: List[str]) -> int:
    """Total bytes of the arrays that survive contraction."""
    total = 0
    for name in live_arrays:
        region = program.allocation_region(name)
        total += region.static_size({}) * _ELEM_BYTES
    return total


def bytes_at_size(bench: Benchmark, size: int, level: Level) -> int:
    """Array bytes of the benchmark compiled at ``n = m = size``."""
    program = bench.program({"n": size, "m": size})
    plan = plan_program(program, level)
    return allocated_bytes(program, plan.live_arrays())


def max_problem_size(
    bench: Benchmark,
    level: Level,
    budget_bytes: int = DEFAULT_BUDGET_BYTES,
    size_cap: int = 65536,
) -> int:
    """Largest ``n = m`` whose allocation fits the budget (binary search).

    Returns ``size_cap`` when the program's memory use is independent of
    problem size (EP after contraction: every array eliminated).
    """
    if bytes_at_size(bench, size_cap, level) <= budget_bytes:
        return size_cap
    lo, hi = 4, size_cap
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if bytes_at_size(bench, mid, level) <= budget_bytes:
            lo = mid
        else:
            hi = mid - 1
    return lo


class MemoryRow:
    """One benchmark's Figure 8 measurements."""

    def __init__(
        self, bench: Benchmark, budget_bytes: int = DEFAULT_BUDGET_BYTES
    ) -> None:
        program = bench.program()
        plan = plan_program(program, C2)
        self.name = bench.name
        self.lb = len(program.arrays)
        self.la = len(plan.live_arrays())
        self.c_percent: Optional[float] = (
            100.0 * (self.lb / self.la - 1.0) if self.la else None
        )
        self.size_before = max_problem_size(bench, BASELINE, budget_bytes)
        self.size_after = max_problem_size(bench, C2, budget_bytes)
        self.unbounded = self.la == 0
        self.paper_lb = bench.paper["fig8_lb"]
        self.paper_la = bench.paper["fig8_la"]
        self.paper_c = bench.paper["fig8_c_percent"]

    @property
    def dim_change_percent(self) -> Optional[float]:
        if self.unbounded:
            return None
        return 100.0 * (self.size_after - self.size_before) / self.size_before

    @property
    def volume_change_percent(self) -> Optional[float]:
        if self.unbounded:
            return None
        before = self.size_before ** 2
        after = self.size_after ** 2
        return 100.0 * (after - before) / before


def figure8_rows(
    benchmarks: Optional[List[Benchmark]] = None,
    budget_bytes: int = DEFAULT_BUDGET_BYTES,
) -> List[MemoryRow]:
    return [
        MemoryRow(bench, budget_bytes) for bench in benchmarks or ALL_BENCHMARKS
    ]


def render_figure8(rows: Optional[List[MemoryRow]] = None) -> str:
    rows = rows or figure8_rows()
    headers = [
        "application",
        "l_b",
        "l_a",
        "C (%)",
        "max size w/o",
        "max size w/",
        "% change dim (vol)",
        "paper C (%)",
    ]
    body: List[List[object]] = []
    for row in rows:
        if row.unbounded:
            change = "unbounded"
        else:
            change = "%.1f (%.1f)" % (
                row.dim_change_percent,
                row.volume_change_percent,
            )
        body.append(
            [
                row.name,
                row.lb,
                row.la,
                row.c_percent,
                row.size_before,
                "unbounded" if row.unbounded else row.size_after,
                change,
                row.paper_c,
            ]
        )
    return render_table(
        headers,
        body,
        title="Figure 8: contraction and maximum problem size",
    )
