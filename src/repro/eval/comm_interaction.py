"""Section 5.5: interaction with communication optimization.

Compares the ``c2+f3`` strategy under the two interaction policies:

* **favor fusion** (the paper's default) — fusion unrestricted;
* **favor communication** — fusion merges vetoed when they would collapse a
  pipelining window (see :mod:`repro.parallel.interaction`).

The paper reports the *slowdown* of favoring communication: large for the
stencil applications (Simple, Tomcatv, SP), marginal for Fibro, zero for EP
and Frac (no communication to favor).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.benchsuite.registry import ALL_BENCHMARKS, Benchmark
from repro.fusion.pipeline import C2F3
from repro.machine.models import ALL_MACHINES, MachineModel
from repro.parallel.commcost import estimate_parallel
from repro.parallel.interaction import (
    FAVOR_COMM,
    FAVOR_FUSION,
    plan_program_with_policy,
)
from repro.scalarize.scalarizer import scalarize
from repro.util.tables import render_table

#: Processor count for the policy comparison (the paper does not pin one;
#: any p with both grid dimensions cut shows the effect).
DEFAULT_P = 16

#: Slowdowns reported in Section 5.5, per machine, percent.
PAPER_SLOWDOWNS: Dict[str, Dict[str, float]] = {
    "Cray T3E": {"Simple": 25.4, "Tomcatv": 22.7, "SP": 9.6, "Fibro": 5.1},
    "IBM SP-2": {"Simple": 31.8, "Tomcatv": 66.5, "SP": 10.5, "Fibro": -10.6},
    "Intel Paragon": {"Simple": 7.5, "Tomcatv": 8.5, "SP": 5.0, "Fibro": 0.9},
}


def policy_slowdown(
    bench: Benchmark,
    machine: MachineModel,
    p: int = DEFAULT_P,
    config: Optional[Mapping[str, int]] = None,
    sample_iterations: int = 2,
) -> float:
    """Percent slowdown of favor-comm relative to favor-fusion (c2+f3)."""
    program = bench.program(config)
    times = {}
    for policy in (FAVOR_FUSION, FAVOR_COMM):
        plan = plan_program_with_policy(program, C2F3, policy, p)
        scalar_program = scalarize(program, plan)
        cost = estimate_parallel(
            scalar_program, machine, p, sample_iterations=sample_iterations
        )
        times[policy] = cost.microseconds
    return 100.0 * (times[FAVOR_COMM] - times[FAVOR_FUSION]) / times[FAVOR_FUSION]


def interaction_sweep(
    machine: MachineModel,
    benchmarks: Optional[Sequence[Benchmark]] = None,
    p: int = DEFAULT_P,
    config: Optional[Mapping[str, int]] = None,
    sample_iterations: int = 2,
) -> Dict[str, float]:
    """Slowdowns for every benchmark on one machine."""
    return {
        bench.name: policy_slowdown(bench, machine, p, config, sample_iterations)
        for bench in (benchmarks or ALL_BENCHMARKS)
    }


def render_interaction(
    results_by_machine: Mapping[str, Mapping[str, float]]
) -> str:
    """Render the Section 5.5 comparison (measured vs paper)."""
    machines = list(results_by_machine)
    benchmarks = sorted(
        {name for results in results_by_machine.values() for name in results}
    )
    headers = ["application"]
    for machine in machines:
        headers.append("%s" % machine)
        headers.append("paper")
    rows: List[List[object]] = []
    for name in benchmarks:
        row: List[object] = [name]
        for machine in machines:
            row.append(results_by_machine[machine].get(name))
            row.append(PAPER_SLOWDOWNS.get(machine, {}).get(name))
        rows.append(row)
    return render_table(
        headers,
        rows,
        title="Section 5.5: slowdown (%) when favoring communication "
        "optimizations over fusion (c2+f3)",
    )
