"""Figures 9-11: runtime improvement of each strategy over baseline.

For one machine model, every benchmark is compiled under every optimization
level, its per-node time estimated on ``p`` processors with scaled problem
sizes (local data constant, so one local-size compilation serves every
``p``), and the percent improvement over the same-``p`` baseline reported —
the bars of Figures 9 (Cray T3E), 10 (IBM SP-2) and 11 (Intel Paragon).
Negative numbers are slowdowns, as in the paper's figures.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.benchsuite.registry import ALL_BENCHMARKS, Benchmark
from repro.fusion.pipeline import (
    ALL_LEVELS,
    BASELINE,
    C1,
    C2,
    C2F3,
    C2F4,
    F1,
    F2,
    F3,
    Level,
)
from repro.machine.models import MachineModel
from repro.parallel.commcost import estimate_parallel
from repro.parallel.interaction import FAVOR_FUSION, plan_program_with_policy
from repro.scalarize.scalarizer import scalarize
from repro.util.tables import improvement_over, render_table

#: The strategy bars of Figures 9-11 (baseline is the reference).
FIGURE_LEVELS: List[Level] = [F1, C1, F2, F3, C2, C2F3, C2F4]

#: The processor counts of the paper's x axes.
PROCESSOR_COUNTS: Tuple[int, ...] = (1, 4, 16, 64)


class RuntimeResult:
    """All measurements of one benchmark on one machine."""

    def __init__(self, name: str) -> None:
        self.name = name
        #: (level name, p) -> per-node microseconds
        self.times: Dict[Tuple[str, int], float] = {}

    def improvement(self, level_name: str, p: int) -> float:
        base = self.times[(BASELINE.name, p)]
        time = self.times[(level_name, p)]
        return improvement_over(base, time)


def measure_benchmark(
    bench: Benchmark,
    machine: MachineModel,
    processor_counts: Sequence[int] = PROCESSOR_COUNTS,
    levels: Optional[Sequence[Level]] = None,
    config: Optional[Mapping[str, int]] = None,
    sample_iterations: int = 2,
) -> RuntimeResult:
    """Estimate per-node times for every level and processor count."""
    levels = list(levels) if levels is not None else [BASELINE] + FIGURE_LEVELS
    program = bench.program(config)
    result = RuntimeResult(bench.name)
    for level in levels:
        for p in processor_counts:
            plan = plan_program_with_policy(program, level, FAVOR_FUSION, p)
            scalar_program = scalarize(program, plan)
            cost = estimate_parallel(
                scalar_program,
                machine,
                p,
                sample_iterations=sample_iterations,
            )
            result.times[(level.name, p)] = cost.microseconds
    return result


def runtime_sweep(
    machine: MachineModel,
    benchmarks: Optional[Sequence[Benchmark]] = None,
    processor_counts: Sequence[int] = PROCESSOR_COUNTS,
    config: Optional[Mapping[str, int]] = None,
    sample_iterations: int = 2,
) -> Dict[str, RuntimeResult]:
    """Measure every benchmark on one machine (one Figure 9/10/11 panel set)."""
    results: Dict[str, RuntimeResult] = {}
    for bench in benchmarks or ALL_BENCHMARKS:
        results[bench.name] = measure_benchmark(
            bench,
            machine,
            processor_counts,
            config=config,
            sample_iterations=sample_iterations,
        )
    return results


def render_runtime_figure(
    machine: MachineModel,
    results: Mapping[str, RuntimeResult],
    processor_counts: Sequence[int] = PROCESSOR_COUNTS,
) -> str:
    """Render one figure: per benchmark, % improvement by level and p."""
    sections: List[str] = [
        "Benchmark performance on %s (%% improvement over baseline)"
        % machine.name
    ]
    for name, result in results.items():
        headers = ["level"] + ["p=%d" % p for p in processor_counts]
        rows: List[List[object]] = []
        for level in FIGURE_LEVELS:
            row: List[object] = [level.name]
            for p in processor_counts:
                row.append(result.improvement(level.name, p))
            rows.append(row)
        sections.append(render_table(headers, rows, title=name))
    return "\n\n".join(sections)
