"""Experiment harnesses: one module per paper table/figure."""

from repro.eval.comm_interaction import (
    DEFAULT_P,
    PAPER_SLOWDOWNS,
    interaction_sweep,
    policy_slowdown,
    render_interaction,
)
from repro.eval.memory import (
    DEFAULT_BUDGET_BYTES,
    MemoryRow,
    allocated_bytes,
    figure8_rows,
    max_problem_size,
    render_figure8,
)
from repro.eval.report import PROFILES, generate_report
from repro.eval.runtime import (
    FIGURE_LEVELS,
    PROCESSOR_COUNTS,
    RuntimeResult,
    measure_benchmark,
    render_runtime_figure,
    runtime_sweep,
)
from repro.eval.static_arrays import (
    StaticArrayRow,
    figure7_rows,
    render_figure7,
)

__all__ = [
    "DEFAULT_BUDGET_BYTES",
    "DEFAULT_P",
    "FIGURE_LEVELS",
    "MemoryRow",
    "PROFILES",
    "PAPER_SLOWDOWNS",
    "PROCESSOR_COUNTS",
    "RuntimeResult",
    "StaticArrayRow",
    "allocated_bytes",
    "figure7_rows",
    "figure8_rows",
    "generate_report",
    "interaction_sweep",
    "max_problem_size",
    "measure_benchmark",
    "policy_slowdown",
    "render_figure7",
    "render_figure8",
    "render_interaction",
    "render_runtime_figure",
    "runtime_sweep",
]
