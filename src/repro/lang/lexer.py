"""Hand-written lexer for the mini-ZPL language."""

from __future__ import annotations

from typing import List

from repro.lang.tokens import KEYWORDS, Token, TokenType
from repro.util.errors import LexError, SourceLocation

_SIMPLE = {
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "^": TokenType.CARET,
    "%": TokenType.PERCENT,
    "@": TokenType.AT,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ";": TokenType.SEMI,
    "=": TokenType.EQ,
}


class Lexer:
    """Converts source text into a list of tokens.

    Comments run from ``--`` to end of line.  Reduction operators ``+<<``,
    ``*<<``, ``max<<`` and ``min<<`` are recognized as single tokens.
    """

    def __init__(self, source: str) -> None:
        self._source = source
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokenize(self) -> List[Token]:
        """Lex the whole input, ending with an EOF token."""
        tokens: List[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.type is TokenType.EOF:
                return tokens

    # ------------------------------------------------------------------

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._col)

    def _peek(self, ahead: int = 0) -> str:
        index = self._pos + ahead
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            if self._source[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _skip_trivia(self) -> None:
        while True:
            ch = self._peek()
            if ch and ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        loc = self._location()
        ch = self._peek()
        if not ch:
            return Token(TokenType.EOF, "", loc)

        if ch.isalpha() or ch == "_":
            return self._lex_word(loc)
        if ch.isdigit():
            return self._lex_number(loc)

        two = ch + self._peek(1)
        three = two + self._peek(2)
        if three == "+<<" or three == "*<<":
            self._advance(3)
            kind = TokenType.SUMRED if three[0] == "+" else TokenType.PRODRED
            return Token(kind, three, loc)
        if two == ":=":
            self._advance(2)
            return Token(TokenType.ASSIGN, two, loc)
        if two == "<=":
            self._advance(2)
            return Token(TokenType.LE, two, loc)
        if two == ">=":
            self._advance(2)
            return Token(TokenType.GE, two, loc)
        if two == "!=":
            self._advance(2)
            return Token(TokenType.NE, two, loc)
        if two == "..":
            self._advance(2)
            return Token(TokenType.DOTDOT, two, loc)
        if ch == "<":
            self._advance()
            return Token(TokenType.LT, ch, loc)
        if ch == ">":
            self._advance()
            return Token(TokenType.GT, ch, loc)
        if ch == ":":
            self._advance()
            return Token(TokenType.COLON, ch, loc)
        if ch in _SIMPLE:
            self._advance()
            return Token(_SIMPLE[ch], ch, loc)
        raise LexError("unexpected character %r" % ch, loc)

    def _lex_word(self, loc: SourceLocation) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._source[start : self._pos]
        # max<< / min<< reductions: a keyword-ish word followed by '<<'.
        if text in ("max", "min") and self._peek() == "<" and self._peek(1) == "<":
            self._advance(2)
            kind = TokenType.MAXRED if text == "max" else TokenType.MINRED
            return Token(kind, text + "<<", loc)
        keyword = KEYWORDS.get(text)
        if keyword is not None:
            return Token(keyword, text, loc)
        return Token(TokenType.IDENT, text, loc, value=text)

    def _lex_number(self, loc: SourceLocation) -> Token:
        start = self._pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        # A '.' starts a fraction only if not the '..' range operator.
        if self._peek() == "." and self._peek(1) != "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self._source[start : self._pos]
        if is_float:
            return Token(TokenType.FLOAT, text, loc, value=float(text))
        return Token(TokenType.INT, text, loc, value=int(text))


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: lex ``source`` into tokens."""
    return Lexer(source).tokenize()
