"""Recursive-descent parser for the mini-ZPL language.

Grammar sketch::

    program   := 'program' IDENT ';' decl*
                 ['procedure' IDENT '(' ')' ';'] 'begin' stmt* 'end' [';'|'.']
    decl      := config | region | direction | var
    config    := 'config' IDENT ':' kind '=' expr ';'
    region    := 'region' IDENT '=' '[' dim {',' dim} ']' ';'
    direction := 'direction' IDENT '=' '[' sint {',' sint} ']' ';'
    var       := 'var' IDENT {',' IDENT} ':' ['[' regionref ']'] kind ';'
    stmt      := regionstmt | scalarassign | for | if | while
    regionstmt:= regionspec IDENT ':=' expr ';'
    for       := 'for' IDENT ':=' expr ('to'|'downto') expr 'do' stmt* 'end' ';'

Expressions use conventional precedence; ``A@(d1,...,dn)`` and ``A@dir`` are
postfix offset references, and ``+<< [R] e`` is a full reduction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang.ast_nodes import (
    ArrayAssign,
    BinOp,
    BoolLit,
    BoundaryStmt,
    Call,
    ConfigDecl,
    Decl,
    DirectionDecl,
    Expr,
    FloatLit,
    For,
    If,
    IntLit,
    OffsetRef,
    Program,
    RangeDim,
    Reduce,
    RegionDecl,
    RegionSpec,
    ScalarAssign,
    Stmt,
    TypeSpec,
    UnOp,
    VarDecl,
    VarRef,
    While,
)
from repro.lang.lexer import tokenize
from repro.lang.tokens import REDUCTION_OPS, Token, TokenType
from repro.util.errors import ParseError

_KIND_TOKENS = {
    TokenType.INTEGER: "integer",
    TokenType.FLOATKW: "float",
    TokenType.BOOLEAN: "boolean",
}

_COMPARISON = {
    TokenType.EQ: "=",
    TokenType.NE: "!=",
    TokenType.LT: "<",
    TokenType.LE: "<=",
    TokenType.GT: ">",
    TokenType.GE: ">=",
}


class Parser:
    """Parses a token stream into a :class:`Program`."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers --------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, *types: TokenType) -> bool:
        return self._peek().type in types

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _expect(self, type: TokenType, context: str = "") -> Token:
        token = self._peek()
        if token.type is not type:
            where = " in %s" % context if context else ""
            raise ParseError(
                "expected %s%s, found %r" % (type.value, where, token.text or "EOF"),
                token.location,
            )
        return self._advance()

    def _accept(self, type: TokenType) -> Optional[Token]:
        if self._at(type):
            return self._advance()
        return None

    # -- program --------------------------------------------------------

    def parse_program(self) -> Program:
        """Parse a whole compilation unit."""
        start = self._expect(TokenType.PROGRAM, "program header")
        name = self._expect(TokenType.IDENT, "program header").text
        self._expect(TokenType.SEMI, "program header")

        decls: List[Decl] = []
        while self._at(
            TokenType.CONFIG, TokenType.REGION, TokenType.DIRECTION, TokenType.VAR
        ):
            decls.append(self._parse_decl())

        if self._accept(TokenType.PROCEDURE):
            self._expect(TokenType.IDENT, "procedure header")
            self._expect(TokenType.LPAREN, "procedure header")
            self._expect(TokenType.RPAREN, "procedure header")
            self._expect(TokenType.SEMI, "procedure header")

        self._expect(TokenType.BEGIN, "main body")
        body = self._parse_stmt_list((TokenType.END,))
        self._expect(TokenType.END, "main body")
        self._accept(TokenType.SEMI)
        self._expect(TokenType.EOF, "end of program")
        return Program(name, decls, body, location=start.location)

    # -- declarations ---------------------------------------------------

    def _parse_decl(self) -> Decl:
        if self._at(TokenType.CONFIG):
            return self._parse_config()
        if self._at(TokenType.REGION):
            return self._parse_region_decl()
        if self._at(TokenType.DIRECTION):
            return self._parse_direction_decl()
        return self._parse_var_decl()

    def _parse_config(self) -> ConfigDecl:
        start = self._advance()
        name = self._expect(TokenType.IDENT, "config declaration").text
        self._expect(TokenType.COLON, "config declaration")
        kind = self._parse_kind()
        self._expect(TokenType.EQ, "config declaration")
        default = self._parse_expr()
        self._expect(TokenType.SEMI, "config declaration")
        return ConfigDecl(name, kind, default, location=start.location)

    def _parse_kind(self) -> str:
        token = self._peek()
        kind = _KIND_TOKENS.get(token.type)
        if kind is None:
            raise ParseError(
                "expected a type (integer/float/boolean), found %r" % token.text,
                token.location,
            )
        self._advance()
        return kind

    def _parse_region_decl(self) -> RegionDecl:
        start = self._advance()
        name = self._expect(TokenType.IDENT, "region declaration").text
        self._expect(TokenType.EQ, "region declaration")
        dims = self._parse_region_literal()
        self._expect(TokenType.SEMI, "region declaration")
        return RegionDecl(name, dims, location=start.location)

    def _parse_region_literal(self) -> List[RangeDim]:
        self._expect(TokenType.LBRACKET, "region literal")
        dims = [self._parse_range_dim()]
        while self._accept(TokenType.COMMA):
            dims.append(self._parse_range_dim())
        self._expect(TokenType.RBRACKET, "region literal")
        return dims

    def _parse_range_dim(self) -> RangeDim:
        lo = self._parse_expr()
        if self._accept(TokenType.DOTDOT):
            hi = self._parse_expr()
        else:
            hi = lo
        return RangeDim(lo, hi, location=lo.location)

    def _parse_direction_decl(self) -> DirectionDecl:
        start = self._advance()
        name = self._expect(TokenType.IDENT, "direction declaration").text
        self._expect(TokenType.EQ, "direction declaration")
        self._expect(TokenType.LBRACKET, "direction declaration")
        components = [self._parse_signed_int()]
        while self._accept(TokenType.COMMA):
            components.append(self._parse_signed_int())
        self._expect(TokenType.RBRACKET, "direction declaration")
        self._expect(TokenType.SEMI, "direction declaration")
        return DirectionDecl(name, tuple(components), location=start.location)

    def _parse_signed_int(self) -> int:
        negative = bool(self._accept(TokenType.MINUS))
        token = self._expect(TokenType.INT, "direction component")
        value = int(token.value)
        return -value if negative else value

    def _parse_var_decl(self) -> VarDecl:
        start = self._expect(TokenType.VAR, "variable declaration")
        names = [self._expect(TokenType.IDENT, "variable declaration").text]
        while self._accept(TokenType.COMMA):
            names.append(self._expect(TokenType.IDENT, "variable declaration").text)
        self._expect(TokenType.COLON, "variable declaration")
        region: Optional[RegionSpec] = None
        if self._at(TokenType.LBRACKET):
            region = self._parse_region_spec()
        kind = self._parse_kind()
        self._expect(TokenType.SEMI, "variable declaration")
        return VarDecl(names, TypeSpec(kind, region), location=start.location)

    def _parse_region_spec(self) -> RegionSpec:
        """Parse ``[...]`` in type or statement position.

        ``[R]`` (a lone identifier) parses as a named region; anything else
        parses as an inline literal.  Semantic analysis may reinterpret a
        lone identifier as a degenerate dimension if it names a scalar.
        """
        start = self._expect(TokenType.LBRACKET, "region")
        if (
            self._at(TokenType.IDENT)
            and self._peek(1).type is TokenType.RBRACKET
        ):
            name = self._advance().text
            self._advance()
            return RegionSpec(name=name, location=start.location)
        dims = [self._parse_range_dim()]
        while self._accept(TokenType.COMMA):
            dims.append(self._parse_range_dim())
        self._expect(TokenType.RBRACKET, "region")
        return RegionSpec(dims=dims, location=start.location)

    # -- statements -----------------------------------------------------

    def _parse_stmt_list(self, terminators: Tuple[TokenType, ...]) -> List[Stmt]:
        stmts: List[Stmt] = []
        while not self._at(*terminators, TokenType.EOF):
            stmts.append(self._parse_stmt())
        return stmts

    def _parse_stmt(self) -> Stmt:
        if self._at(TokenType.LBRACKET):
            return self._parse_array_assign()
        if self._at(TokenType.FOR):
            return self._parse_for()
        if self._at(TokenType.IF):
            return self._parse_if()
        if self._at(TokenType.WHILE):
            return self._parse_while()
        if self._at(TokenType.IDENT):
            return self._parse_scalar_assign()
        token = self._peek()
        raise ParseError("expected a statement, found %r" % token.text, token.location)

    def _parse_array_assign(self) -> Stmt:
        region = self._parse_region_spec()
        if self._at(TokenType.WRAP, TokenType.REFLECT):
            kind_token = self._advance()
            array = self._expect(TokenType.IDENT, "boundary statement").text
            self._expect(TokenType.SEMI, "boundary statement")
            return BoundaryStmt(
                region, kind_token.text, array, location=region.location
            )
        target = self._expect(TokenType.IDENT, "array assignment").text
        self._expect(TokenType.ASSIGN, "array assignment")
        value = self._parse_expr()
        self._expect(TokenType.SEMI, "array assignment")
        return ArrayAssign(region, target, value, location=region.location)

    def _parse_scalar_assign(self) -> ScalarAssign:
        name_token = self._expect(TokenType.IDENT, "assignment")
        self._expect(TokenType.ASSIGN, "assignment")
        value = self._parse_expr()
        self._expect(TokenType.SEMI, "assignment")
        return ScalarAssign(name_token.text, value, location=name_token.location)

    def _parse_for(self) -> For:
        start = self._advance()
        var = self._expect(TokenType.IDENT, "for loop").text
        self._expect(TokenType.ASSIGN, "for loop")
        lo = self._parse_expr()
        downto = False
        if self._accept(TokenType.DOWNTO):
            downto = True
        else:
            self._expect(TokenType.TO, "for loop")
        hi = self._parse_expr()
        self._expect(TokenType.DO, "for loop")
        body = self._parse_stmt_list((TokenType.END,))
        self._expect(TokenType.END, "for loop")
        self._expect(TokenType.SEMI, "for loop")
        return For(var, lo, hi, body, downto=downto, location=start.location)

    def _parse_if(self) -> If:
        start = self._advance()
        cond = self._parse_expr()
        self._expect(TokenType.THEN, "if statement")
        then_body = self._parse_stmt_list(
            (TokenType.ELSIF, TokenType.ELSE, TokenType.END)
        )
        if self._at(TokenType.ELSIF):
            # Desugar 'elsif' into a nested If occupying the else branch.
            nested = self._parse_if_tail()
            return If(cond, then_body, [nested], location=start.location)
        else_body: List[Stmt] = []
        if self._accept(TokenType.ELSE):
            else_body = self._parse_stmt_list((TokenType.END,))
        self._expect(TokenType.END, "if statement")
        self._expect(TokenType.SEMI, "if statement")
        return If(cond, then_body, else_body, location=start.location)

    def _parse_if_tail(self) -> If:
        start = self._expect(TokenType.ELSIF, "elsif")
        cond = self._parse_expr()
        self._expect(TokenType.THEN, "elsif")
        then_body = self._parse_stmt_list(
            (TokenType.ELSIF, TokenType.ELSE, TokenType.END)
        )
        if self._at(TokenType.ELSIF):
            nested = self._parse_if_tail()
            return If(cond, then_body, [nested], location=start.location)
        else_body: List[Stmt] = []
        if self._accept(TokenType.ELSE):
            else_body = self._parse_stmt_list((TokenType.END,))
        self._expect(TokenType.END, "if statement")
        self._expect(TokenType.SEMI, "if statement")
        return If(cond, then_body, else_body, location=start.location)

    def _parse_while(self) -> While:
        start = self._advance()
        cond = self._parse_expr()
        self._expect(TokenType.DO, "while loop")
        body = self._parse_stmt_list((TokenType.END,))
        self._expect(TokenType.END, "while loop")
        self._expect(TokenType.SEMI, "while loop")
        return While(cond, body, location=start.location)

    # -- expressions ----------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._at(TokenType.OR):
            loc = self._advance().location
            right = self._parse_and()
            left = BinOp("or", left, right, location=loc)
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._at(TokenType.AND):
            loc = self._advance().location
            right = self._parse_not()
            left = BinOp("and", left, right, location=loc)
        return left

    def _parse_not(self) -> Expr:
        if self._at(TokenType.NOT):
            loc = self._advance().location
            return UnOp("not", self._parse_not(), location=loc)
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        if self._peek().type in _COMPARISON:
            token = self._advance()
            right = self._parse_additive()
            return BinOp(_COMPARISON[token.type], left, right, location=token.location)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._at(TokenType.PLUS, TokenType.MINUS):
            token = self._advance()
            right = self._parse_multiplicative()
            left = BinOp(token.text, left, right, location=token.location)
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self._at(TokenType.STAR, TokenType.SLASH, TokenType.PERCENT):
            token = self._advance()
            right = self._parse_unary()
            left = BinOp(token.text, left, right, location=token.location)
        return left

    def _parse_unary(self) -> Expr:
        if self._at(TokenType.MINUS):
            loc = self._advance().location
            return UnOp("-", self._parse_unary(), location=loc)
        if self._at(TokenType.PLUS):
            self._advance()
            return self._parse_unary()
        if self._peek().type in REDUCTION_OPS:
            return self._parse_reduce()
        return self._parse_power()

    def _parse_reduce(self) -> Reduce:
        token = self._advance()
        op = REDUCTION_OPS[token.type]
        region: Optional[RegionSpec] = None
        if self._at(TokenType.LBRACKET):
            region = self._parse_region_spec()
        operand = self._parse_unary()
        return Reduce(op, region, operand, location=token.location)

    def _parse_power(self) -> Expr:
        base = self._parse_postfix()
        if self._at(TokenType.CARET):
            token = self._advance()
            # Right-associative exponentiation.
            exponent = self._parse_unary()
            return BinOp("^", base, exponent, location=token.location)
        return base

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while self._at(TokenType.AT):
            token = self._advance()
            if not isinstance(expr, VarRef):
                raise ParseError(
                    "'@' may only follow an array variable reference",
                    token.location,
                )
            direction = self._parse_direction_operand()
            expr = OffsetRef(expr.name, direction, location=token.location)
        return expr

    def _parse_direction_operand(self):
        if self._at(TokenType.IDENT):
            return self._advance().text
        self._expect(TokenType.LPAREN, "direction")
        components = [self._parse_signed_int()]
        while self._accept(TokenType.COMMA):
            components.append(self._parse_signed_int())
        self._expect(TokenType.RPAREN, "direction")
        return tuple(components)

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.INT:
            self._advance()
            return IntLit(int(token.value), location=token.location)
        if token.type is TokenType.FLOAT:
            self._advance()
            return FloatLit(float(token.value), location=token.location)
        if token.type is TokenType.TRUE:
            self._advance()
            return BoolLit(True, location=token.location)
        if token.type is TokenType.FALSE:
            self._advance()
            return BoolLit(False, location=token.location)
        if token.type is TokenType.IDENT:
            self._advance()
            if self._at(TokenType.LPAREN):
                self._advance()
                args: List[Expr] = []
                if not self._at(TokenType.RPAREN):
                    args.append(self._parse_expr())
                    while self._accept(TokenType.COMMA):
                        args.append(self._parse_expr())
                self._expect(TokenType.RPAREN, "call")
                return Call(token.text, args, location=token.location)
            return VarRef(token.text, location=token.location)
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenType.RPAREN, "parenthesized expression")
            return expr
        raise ParseError(
            "expected an expression, found %r" % (token.text or "EOF"), token.location
        )


def parse(source: str) -> Program:
    """Parse mini-ZPL source text into an AST."""
    return Parser(tokenize(source)).parse_program()
