"""Abstract syntax tree for the mini-ZPL language.

The AST is deliberately close to ZPL's surface syntax: array statements are
region-scoped assignments whose right-hand sides reference arrays either
directly or through constant ``@``-offsets; sequential control flow wraps
basic blocks of array statements.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.util.errors import SourceLocation


class Node:
    """Base class for all AST nodes."""

    __slots__ = ("location",)

    def __init__(self, location: Optional[SourceLocation] = None) -> None:
        self.location = location


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base class for expressions."""

    __slots__ = ()


class IntLit(Expr):
    """An integer literal."""

    __slots__ = ("value",)

    def __init__(self, value: int, location=None) -> None:
        super().__init__(location)
        self.value = value

    def __repr__(self) -> str:
        return "IntLit(%d)" % self.value


class FloatLit(Expr):
    """A floating-point literal."""

    __slots__ = ("value",)

    def __init__(self, value: float, location=None) -> None:
        super().__init__(location)
        self.value = value

    def __repr__(self) -> str:
        return "FloatLit(%r)" % self.value


class BoolLit(Expr):
    """A boolean literal."""

    __slots__ = ("value",)

    def __init__(self, value: bool, location=None) -> None:
        super().__init__(location)
        self.value = value

    def __repr__(self) -> str:
        return "BoolLit(%r)" % self.value


class VarRef(Expr):
    """A reference to a scalar or array variable (no offset)."""

    __slots__ = ("name",)

    def __init__(self, name: str, location=None) -> None:
        super().__init__(location)
        self.name = name

    def __repr__(self) -> str:
        return "VarRef(%s)" % self.name


class OffsetRef(Expr):
    """An array reference through a constant offset: ``A@(d1,...,dn)``.

    ``direction`` is either a tuple of integers (literal direction) or a
    string naming a declared ``direction``; semantic analysis resolves names
    to tuples.
    """

    __slots__ = ("name", "direction")

    def __init__(self, name: str, direction, location=None) -> None:
        super().__init__(location)
        self.name = name
        self.direction = direction

    def __repr__(self) -> str:
        return "OffsetRef(%s@%r)" % (self.name, self.direction)


class BinOp(Expr):
    """A binary operation; ``op`` is the operator's source spelling."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, location=None) -> None:
        super().__init__(location)
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return "BinOp(%r, %r, %r)" % (self.op, self.left, self.right)


class UnOp(Expr):
    """A unary operation (``-`` or ``not``)."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, location=None) -> None:
        super().__init__(location)
        self.op = op
        self.operand = operand

    def __repr__(self) -> str:
        return "UnOp(%r, %r)" % (self.op, self.operand)


class Call(Expr):
    """An intrinsic function call (sqrt, exp, min, ...)."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expr], location=None) -> None:
        super().__init__(location)
        self.name = name
        self.args = list(args)

    def __repr__(self) -> str:
        return "Call(%s, %r)" % (self.name, self.args)


class Reduce(Expr):
    """A full reduction of an array expression to a scalar.

    ``op`` is one of ``+ * max min``; ``region`` is an optional
    :class:`RegionSpec` giving the index set reduced over (defaults to the
    declared region of the arrays involved).
    """

    __slots__ = ("op", "region", "operand")

    def __init__(self, op: str, region, operand: Expr, location=None) -> None:
        super().__init__(location)
        self.op = op
        self.region = region
        self.operand = operand

    def __repr__(self) -> str:
        return "Reduce(%r, %r, %r)" % (self.op, self.region, self.operand)


# ---------------------------------------------------------------------------
# Regions and types
# ---------------------------------------------------------------------------


class RangeDim(Node):
    """One dimension of a region literal: ``lo..hi`` or a degenerate index."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Expr, hi: Expr, location=None) -> None:
        super().__init__(location)
        self.lo = lo
        self.hi = hi

    def __repr__(self) -> str:
        return "RangeDim(%r, %r)" % (self.lo, self.hi)


class RegionSpec(Node):
    """A region in statement or type position: a name or an inline literal."""

    __slots__ = ("name", "dims")

    def __init__(
        self,
        name: Optional[str] = None,
        dims: Optional[List[RangeDim]] = None,
        location=None,
    ) -> None:
        super().__init__(location)
        if (name is None) == (dims is None):
            raise ValueError("RegionSpec needs exactly one of name or dims")
        self.name = name
        self.dims = dims

    def __repr__(self) -> str:
        if self.name is not None:
            return "RegionSpec(%s)" % self.name
        return "RegionSpec(%r)" % self.dims


class TypeSpec(Node):
    """A declared type: scalar (``integer``/``float``/``boolean``) or array.

    Array types carry the region the array is declared over:
    ``var A : [R] float;``.
    """

    __slots__ = ("kind", "region")

    def __init__(self, kind: str, region: Optional[RegionSpec] = None, location=None):
        super().__init__(location)
        self.kind = kind
        self.region = region

    @property
    def is_array(self) -> bool:
        return self.region is not None

    def __repr__(self) -> str:
        if self.region is None:
            return "TypeSpec(%s)" % self.kind
        return "TypeSpec([%r] %s)" % (self.region, self.kind)


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


class Decl(Node):
    """Base class for top-level declarations."""

    __slots__ = ()


class ConfigDecl(Decl):
    """``config n : integer = 64;`` — a tunable compile-time constant."""

    __slots__ = ("name", "kind", "default")

    def __init__(self, name: str, kind: str, default: Expr, location=None) -> None:
        super().__init__(location)
        self.name = name
        self.kind = kind
        self.default = default

    def __repr__(self) -> str:
        return "ConfigDecl(%s : %s = %r)" % (self.name, self.kind, self.default)


class RegionDecl(Decl):
    """``region R = [1..n, 1..m];``."""

    __slots__ = ("name", "dims")

    def __init__(self, name: str, dims: List[RangeDim], location=None) -> None:
        super().__init__(location)
        self.name = name
        self.dims = dims

    def __repr__(self) -> str:
        return "RegionDecl(%s, %r)" % (self.name, self.dims)


class DirectionDecl(Decl):
    """``direction north = [-1, 0];`` — a named constant offset."""

    __slots__ = ("name", "components")

    def __init__(self, name: str, components: Tuple[int, ...], location=None) -> None:
        super().__init__(location)
        self.name = name
        self.components = tuple(components)

    def __repr__(self) -> str:
        return "DirectionDecl(%s, %r)" % (self.name, self.components)


class VarDecl(Decl):
    """``var A, B : [R] float;`` or ``var s : float;``."""

    __slots__ = ("names", "type")

    def __init__(self, names: List[str], type: TypeSpec, location=None) -> None:
        super().__init__(location)
        self.names = list(names)
        self.type = type

    def __repr__(self) -> str:
        return "VarDecl(%r : %r)" % (self.names, self.type)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    """Base class for statements."""

    __slots__ = ()


class ArrayAssign(Stmt):
    """A region-scoped array assignment: ``[R] A := expr;``."""

    __slots__ = ("region", "target", "value")

    def __init__(
        self, region: RegionSpec, target: str, value: Expr, location=None
    ) -> None:
        super().__init__(location)
        self.region = region
        self.target = target
        self.value = value

    def __repr__(self) -> str:
        return "ArrayAssign([%r] %s := %r)" % (self.region, self.target, self.value)


class BoundaryStmt(Stmt):
    """A boundary statement: ``[R] wrap A;`` or ``[R] reflect A;``.

    Fills the halo of ``A`` outside region ``R`` periodically (wrap) or by
    mirroring (reflect), so stencil reads at the region's edges see
    meaningful neighbors.  Boundary statements are compiler-primitive-like:
    they are not normalized and never fuse (Section 2.1's remark about
    communication primitives).
    """

    __slots__ = ("region", "kind", "array")

    def __init__(self, region: "RegionSpec", kind: str, array: str, location=None):
        super().__init__(location)
        self.region = region
        self.kind = kind
        self.array = array

    def __repr__(self) -> str:
        return "BoundaryStmt([%r] %s %s)" % (self.region, self.kind, self.array)


class ScalarAssign(Stmt):
    """A scalar assignment: ``s := expr;`` (expr may contain reductions)."""

    __slots__ = ("target", "value")

    def __init__(self, target: str, value: Expr, location=None) -> None:
        super().__init__(location)
        self.target = target
        self.value = value

    def __repr__(self) -> str:
        return "ScalarAssign(%s := %r)" % (self.target, self.value)


class For(Stmt):
    """A sequential counted loop: ``for i := lo to hi do ... end;``."""

    __slots__ = ("var", "lo", "hi", "downto", "body")

    def __init__(
        self,
        var: str,
        lo: Expr,
        hi: Expr,
        body: List[Stmt],
        downto: bool = False,
        location=None,
    ) -> None:
        super().__init__(location)
        self.var = var
        self.lo = lo
        self.hi = hi
        self.downto = downto
        self.body = body

    def __repr__(self) -> str:
        direction = "downto" if self.downto else "to"
        return "For(%s := %r %s %r, %r)" % (
            self.var,
            self.lo,
            direction,
            self.hi,
            self.body,
        )


class If(Stmt):
    """A conditional over scalar state."""

    __slots__ = ("cond", "then_body", "else_body")

    def __init__(
        self,
        cond: Expr,
        then_body: List[Stmt],
        else_body: Optional[List[Stmt]] = None,
        location=None,
    ) -> None:
        super().__init__(location)
        self.cond = cond
        self.then_body = then_body
        self.else_body = else_body or []

    def __repr__(self) -> str:
        return "If(%r, %r, %r)" % (self.cond, self.then_body, self.else_body)


class While(Stmt):
    """A while loop over scalar state."""

    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: List[Stmt], location=None) -> None:
        super().__init__(location)
        self.cond = cond
        self.body = body

    def __repr__(self) -> str:
        return "While(%r, %r)" % (self.cond, self.body)


# ---------------------------------------------------------------------------
# Program
# ---------------------------------------------------------------------------


class Program(Node):
    """A whole compilation unit: declarations plus the body of ``main``."""

    __slots__ = ("name", "decls", "body")

    def __init__(
        self, name: str, decls: List[Decl], body: List[Stmt], location=None
    ) -> None:
        super().__init__(location)
        self.name = name
        self.decls = decls
        self.body = body

    def __repr__(self) -> str:
        return "Program(%s, %d decls, %d stmts)" % (
            self.name,
            len(self.decls),
            len(self.body),
        )
