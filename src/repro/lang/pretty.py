"""AST pretty-printer: render a parsed program back to mini-ZPL source.

The unparser round-trips: ``parse(pretty(parse(src)))`` produces a
structurally identical AST (property-tested).  Useful for emitting
transformed programs, for error reporting, and as documentation of the
concrete syntax.
"""

from __future__ import annotations

from typing import List

from repro.lang import ast_nodes as ast
from repro.util.errors import ReproError

_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 4,
    "!=": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
    "^": 8,
}


class PrettyPrinter:
    """Renders AST nodes with minimal parenthesization."""

    def __init__(self, indent: str = "  ") -> None:
        self._indent = indent

    # -- program -----------------------------------------------------------

    def program(self, node: ast.Program) -> str:
        lines: List[str] = ["program %s;" % node.name, ""]
        for decl in node.decls:
            lines.append(self.decl(decl))
        if node.decls:
            lines.append("")
        lines.append("begin")
        lines.extend(self.stmts(node.body, 1))
        lines.append("end;")
        return "\n".join(lines) + "\n"

    # -- declarations ---------------------------------------------------------

    def decl(self, node: ast.Decl) -> str:
        if isinstance(node, ast.ConfigDecl):
            return "config %s : %s = %s;" % (
                node.name,
                node.kind,
                self.expr(node.default),
            )
        if isinstance(node, ast.RegionDecl):
            return "region %s = %s;" % (node.name, self._dims(node.dims))
        if isinstance(node, ast.DirectionDecl):
            return "direction %s = [%s];" % (
                node.name,
                ", ".join(str(c) for c in node.components),
            )
        if isinstance(node, ast.VarDecl):
            return "var %s : %s;" % (
                ", ".join(node.names),
                self._type(node.type),
            )
        raise ReproError("cannot print declaration %r" % node)

    def _type(self, node: ast.TypeSpec) -> str:
        if node.is_array:
            return "%s %s" % (self.region_spec(node.region), node.kind)
        return node.kind

    def _dims(self, dims: List[ast.RangeDim]) -> str:
        parts = []
        for dim in dims:
            if dim.lo is dim.hi:
                parts.append(self.expr(dim.lo))
            else:
                parts.append("%s..%s" % (self.expr(dim.lo), self.expr(dim.hi)))
        return "[%s]" % ", ".join(parts)

    def region_spec(self, node: ast.RegionSpec) -> str:
        if node.name is not None:
            return "[%s]" % node.name
        return self._dims(node.dims)

    # -- statements -------------------------------------------------------------

    def stmts(self, body: List[ast.Stmt], depth: int) -> List[str]:
        lines: List[str] = []
        pad = self._indent * depth
        for stmt in body:
            if isinstance(stmt, ast.ArrayAssign):
                lines.append(
                    "%s%s %s := %s;"
                    % (
                        pad,
                        self.region_spec(stmt.region),
                        stmt.target,
                        self.expr(stmt.value),
                    )
                )
            elif isinstance(stmt, ast.BoundaryStmt):
                lines.append(
                    "%s%s %s %s;"
                    % (pad, self.region_spec(stmt.region), stmt.kind, stmt.array)
                )
            elif isinstance(stmt, ast.ScalarAssign):
                lines.append(
                    "%s%s := %s;" % (pad, stmt.target, self.expr(stmt.value))
                )
            elif isinstance(stmt, ast.For):
                lines.append(
                    "%sfor %s := %s %s %s do"
                    % (
                        pad,
                        stmt.var,
                        self.expr(stmt.lo),
                        "downto" if stmt.downto else "to",
                        self.expr(stmt.hi),
                    )
                )
                lines.extend(self.stmts(stmt.body, depth + 1))
                lines.append("%send;" % pad)
            elif isinstance(stmt, ast.If):
                lines.append("%sif %s then" % (pad, self.expr(stmt.cond)))
                lines.extend(self.stmts(stmt.then_body, depth + 1))
                if stmt.else_body:
                    lines.append("%selse" % pad)
                    lines.extend(self.stmts(stmt.else_body, depth + 1))
                lines.append("%send;" % pad)
            elif isinstance(stmt, ast.While):
                lines.append("%swhile %s do" % (pad, self.expr(stmt.cond)))
                lines.extend(self.stmts(stmt.body, depth + 1))
                lines.append("%send;" % pad)
            else:
                raise ReproError("cannot print statement %r" % stmt)
        return lines

    # -- expressions --------------------------------------------------------------

    def expr(self, node: ast.Expr, parent_precedence: int = 0) -> str:
        text, precedence = self._expr_prec(node)
        if precedence < parent_precedence:
            return "(%s)" % text
        return text

    def _expr_prec(self, node: ast.Expr):
        if isinstance(node, ast.IntLit):
            return str(node.value), 10
        if isinstance(node, ast.FloatLit):
            return repr(node.value), 10
        if isinstance(node, ast.BoolLit):
            return ("true" if node.value else "false"), 10
        if isinstance(node, ast.VarRef):
            return node.name, 10
        if isinstance(node, ast.OffsetRef):
            if isinstance(node.direction, str):
                return "%s@%s" % (node.name, node.direction), 9
            return (
                "%s@(%s)" % (node.name, ", ".join(str(c) for c in node.direction)),
                9,
            )
        if isinstance(node, ast.BinOp):
            precedence = _PRECEDENCE[node.op]
            if node.op == "^":
                # Right-associative: parenthesize a compound left operand.
                left = self.expr(node.left, precedence + 1)
                right = self.expr(node.right, precedence)
            else:
                left = self.expr(node.left, precedence)
                right = self.expr(node.right, precedence + 1)
            return "%s %s %s" % (left, node.op, right), precedence
        if isinstance(node, ast.UnOp):
            if node.op == "not":
                return "not %s" % self.expr(node.operand, 3), 3
            return "-%s" % self.expr(node.operand, 7), 7
        if isinstance(node, ast.Call):
            args = ", ".join(self.expr(a) for a in node.args)
            return "%s(%s)" % (node.name, args), 10
        if isinstance(node, ast.Reduce):
            region = (
                "%s " % self.region_spec(node.region)
                if node.region is not None
                else ""
            )
            return "%s<< %s%s" % (node.op, region, self.expr(node.operand, 7)), 7
        raise ReproError("cannot print expression %r" % node)


def pretty(program: ast.Program) -> str:
    """Render a parsed program back to source text."""
    return PrettyPrinter().program(program)
