"""Semantic analysis for the mini-ZPL language.

Responsibilities:

* build the symbol table (configs, regions, directions, arrays, scalars);
* resolve named directions in ``@``-references to concrete offset tuples;
* disambiguate ``[x]`` region specifiers (named region vs degenerate index);
* type-check expressions and statements, including rank checks on array
  operations and the scalar/array distinction the normal form requires.

The checker returns a :class:`CheckedProgram` which later phases (the
normalizer in :mod:`repro.ir`) consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lang import ast_nodes as ast
from repro.util.errors import SemanticError

INTRINSICS = {
    # name -> (arity, result kind or None meaning "same as argument")
    "sqrt": (1, "float"),
    "exp": (1, "float"),
    "log": (1, "float"),
    "sin": (1, "float"),
    "cos": (1, "float"),
    "tan": (1, "float"),
    "atan": (1, "float"),
    "abs": (1, None),
    "floor": (1, "integer"),
    "ceil": (1, "integer"),
    "min": (2, None),
    "max": (2, None),
    "pow": (2, "float"),
    "mod": (2, None),
    "sign": (1, None),
}


def index_array_dimension(name: str) -> Optional[int]:
    """If ``name`` is a ZPL index pseudo-array (Index1, Index2, ...), its dim."""
    if name.startswith("Index") and name[5:].isdigit():
        return int(name[5:])
    return None


class Symbol:
    """An entry in the symbol table."""

    __slots__ = ("name", "kind", "elem_kind", "region", "components", "dims", "default")

    CONFIG = "config"
    REGION = "region"
    DIRECTION = "direction"
    ARRAY = "array"
    SCALAR = "scalar"

    def __init__(
        self,
        name: str,
        kind: str,
        elem_kind: Optional[str] = None,
        region: Optional[ast.RegionSpec] = None,
        components: Optional[Tuple[int, ...]] = None,
        dims: Optional[List[ast.RangeDim]] = None,
        default: Optional[ast.Expr] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.elem_kind = elem_kind
        self.region = region
        self.components = components
        self.dims = dims
        self.default = default

    def __repr__(self) -> str:
        return "Symbol(%s, %s)" % (self.name, self.kind)


class ExprType:
    """The type of an expression: element kind plus array rank (0 = scalar)."""

    __slots__ = ("kind", "rank")

    def __init__(self, kind: str, rank: int = 0) -> None:
        self.kind = kind
        self.rank = rank

    @property
    def is_array(self) -> bool:
        return self.rank > 0

    def __repr__(self) -> str:
        if self.rank:
            return "ExprType(%s, rank=%d)" % (self.kind, self.rank)
        return "ExprType(%s)" % self.kind

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ExprType)
            and self.kind == other.kind
            and self.rank == other.rank
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.rank))


class SymbolTable:
    """Name -> :class:`Symbol`, single flat scope (mini-ZPL has no nesting)."""

    def __init__(self) -> None:
        self._symbols: Dict[str, Symbol] = {}

    def declare(self, symbol: Symbol, location=None) -> None:
        if symbol.name in self._symbols:
            raise SemanticError("duplicate declaration of %r" % symbol.name, location)
        self._symbols[symbol.name] = symbol

    def lookup(self, name: str, location=None) -> Symbol:
        symbol = self._symbols.get(name)
        if symbol is None:
            raise SemanticError("undeclared identifier %r" % name, location)
        return symbol

    def maybe(self, name: str) -> Optional[Symbol]:
        return self._symbols.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def arrays(self) -> List[Symbol]:
        return [s for s in self._symbols.values() if s.kind == Symbol.ARRAY]

    def configs(self) -> List[Symbol]:
        return [s for s in self._symbols.values() if s.kind == Symbol.CONFIG]

    def all_symbols(self) -> List[Symbol]:
        return list(self._symbols.values())


class CheckedProgram:
    """A semantically valid program plus its symbol table."""

    def __init__(self, program: ast.Program, symtab: SymbolTable) -> None:
        self.program = program
        self.symtab = symtab

    @property
    def name(self) -> str:
        return self.program.name


class Checker:
    """Performs semantic analysis over a parsed program."""

    def __init__(self, program: ast.Program) -> None:
        self._program = program
        self._symtab = SymbolTable()

    def check(self) -> CheckedProgram:
        """Run all checks; raises :class:`SemanticError` on the first error."""
        for decl in self._program.decls:
            self._declare(decl)
        self._check_stmts(self._program.body)
        return CheckedProgram(self._program, self._symtab)

    # -- declarations ---------------------------------------------------

    def _declare(self, decl: ast.Decl) -> None:
        if isinstance(decl, ast.ConfigDecl):
            if decl.kind not in ("integer", "float"):
                raise SemanticError(
                    "config %r must be integer or float" % decl.name, decl.location
                )
            default_type = self._check_expr(decl.default, allow_arrays=False)
            if decl.kind == "integer" and default_type.kind != "integer":
                raise SemanticError(
                    "config %r default must be an integer" % decl.name, decl.location
                )
            self._symtab.declare(
                Symbol(decl.name, Symbol.CONFIG, elem_kind=decl.kind, default=decl.default),
                decl.location,
            )
        elif isinstance(decl, ast.RegionDecl):
            for dim in decl.dims:
                self._check_bound(dim.lo)
                self._check_bound(dim.hi)
            self._symtab.declare(
                Symbol(decl.name, Symbol.REGION, dims=decl.dims), decl.location
            )
        elif isinstance(decl, ast.DirectionDecl):
            self._symtab.declare(
                Symbol(decl.name, Symbol.DIRECTION, components=decl.components),
                decl.location,
            )
        elif isinstance(decl, ast.VarDecl):
            for name in decl.names:
                if decl.type.is_array:
                    region = self._resolve_region(decl.type.region)
                    self._symtab.declare(
                        Symbol(
                            name,
                            Symbol.ARRAY,
                            elem_kind=decl.type.kind,
                            region=region,
                        ),
                        decl.location,
                    )
                else:
                    self._symtab.declare(
                        Symbol(name, Symbol.SCALAR, elem_kind=decl.type.kind),
                        decl.location,
                    )
        else:
            raise SemanticError("unknown declaration %r" % decl, decl.location)

    def _check_bound(self, expr: ast.Expr) -> None:
        bound_type = self._check_expr(expr, allow_arrays=False)
        if bound_type.kind != "integer":
            raise SemanticError("region bounds must be integers", expr.location)

    def _resolve_region(self, spec: ast.RegionSpec) -> ast.RegionSpec:
        """Resolve a region spec, disambiguating lone identifiers.

        A ``[x]`` spec parses as a named region; if ``x`` actually names an
        integer scalar (e.g. a loop variable), reinterpret it as a rank-1
        degenerate literal.
        """
        if spec.name is not None:
            symbol = self._symtab.maybe(spec.name)
            if symbol is None:
                raise SemanticError("undeclared region %r" % spec.name, spec.location)
            if symbol.kind == Symbol.REGION:
                return spec
            if symbol.kind in (Symbol.SCALAR, Symbol.CONFIG):
                if symbol.elem_kind != "integer":
                    raise SemanticError(
                        "degenerate region index %r must be an integer" % spec.name,
                        spec.location,
                    )
                ref = ast.VarRef(spec.name, location=spec.location)
                return ast.RegionSpec(
                    dims=[ast.RangeDim(ref, ref, location=spec.location)],
                    location=spec.location,
                )
            raise SemanticError(
                "%r does not name a region" % spec.name, spec.location
            )
        for dim in spec.dims:
            self._check_bound(dim.lo)
            self._check_bound(dim.hi)
        return spec

    def region_rank(self, spec: ast.RegionSpec) -> int:
        """The rank of a (resolved) region spec."""
        if spec.name is not None:
            return len(self._symtab.lookup(spec.name).dims)
        return len(spec.dims)

    # -- statements -----------------------------------------------------

    def _check_stmts(self, stmts: List[ast.Stmt]) -> None:
        for stmt in stmts:
            self._check_stmt(stmt)

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.ArrayAssign):
            self._check_array_assign(stmt)
        elif isinstance(stmt, ast.BoundaryStmt):
            self._check_boundary(stmt)
        elif isinstance(stmt, ast.ScalarAssign):
            self._check_scalar_assign(stmt)
        elif isinstance(stmt, ast.For):
            self._check_for(stmt)
        elif isinstance(stmt, ast.If):
            cond = self._check_expr(stmt.cond, allow_arrays=False)
            if cond.kind != "boolean":
                raise SemanticError("if condition must be boolean", stmt.location)
            self._check_stmts(stmt.then_body)
            self._check_stmts(stmt.else_body)
        elif isinstance(stmt, ast.While):
            cond = self._check_expr(stmt.cond, allow_arrays=False)
            if cond.kind != "boolean":
                raise SemanticError("while condition must be boolean", stmt.location)
            self._check_stmts(stmt.body)
        else:
            raise SemanticError("unknown statement %r" % stmt, stmt.location)

    def _check_array_assign(self, stmt: ast.ArrayAssign) -> None:
        stmt.region = self._resolve_region(stmt.region)
        rank = self.region_rank(stmt.region)
        target = self._symtab.lookup(stmt.target, stmt.location)
        if target.kind != Symbol.ARRAY:
            raise SemanticError(
                "target of a region-scoped assignment must be an array, got %r"
                % stmt.target,
                stmt.location,
            )
        target_rank = self.region_rank(target.region)
        if target_rank != rank:
            raise SemanticError(
                "array %r has rank %d but statement region has rank %d"
                % (stmt.target, target_rank, rank),
                stmt.location,
            )
        value_type = self._check_expr(stmt.value, allow_arrays=True, statement_rank=rank)
        if value_type.is_array and value_type.rank != rank:
            raise SemanticError(
                "rank mismatch in array assignment: region rank %d, value rank %d"
                % (rank, value_type.rank),
                stmt.location,
            )
        if value_type.kind == "boolean" and target.elem_kind != "boolean":
            raise SemanticError(
                "cannot assign boolean value to %s array" % target.elem_kind,
                stmt.location,
            )

    def _check_boundary(self, stmt: ast.BoundaryStmt) -> None:
        stmt.region = self._resolve_region(stmt.region)
        rank = self.region_rank(stmt.region)
        array = self._symtab.lookup(stmt.array, stmt.location)
        if array.kind != Symbol.ARRAY:
            raise SemanticError(
                "%s applies to arrays; %r is a %s"
                % (stmt.kind, stmt.array, array.kind),
                stmt.location,
            )
        if self.region_rank(array.region) != rank:
            raise SemanticError(
                "array %r has rank %d but boundary region has rank %d"
                % (stmt.array, self.region_rank(array.region), rank),
                stmt.location,
            )

    def _check_scalar_assign(self, stmt: ast.ScalarAssign) -> None:
        target = self._symtab.lookup(stmt.target, stmt.location)
        if target.kind not in (Symbol.SCALAR,):
            raise SemanticError(
                "target of a scalar assignment must be a scalar variable, got %r"
                % stmt.target,
                stmt.location,
            )
        value_type = self._check_expr(stmt.value, allow_arrays=False)
        if value_type.kind == "boolean" and target.elem_kind != "boolean":
            raise SemanticError(
                "cannot assign boolean value to %s scalar" % target.elem_kind,
                stmt.location,
            )
        if value_type.kind == "float" and target.elem_kind == "integer":
            raise SemanticError(
                "cannot assign float value to integer scalar %r" % stmt.target,
                stmt.location,
            )

    def _check_for(self, stmt: ast.For) -> None:
        var = self._symtab.lookup(stmt.var, stmt.location)
        if var.kind != Symbol.SCALAR or var.elem_kind != "integer":
            raise SemanticError(
                "for-loop variable %r must be a declared integer scalar" % stmt.var,
                stmt.location,
            )
        for bound in (stmt.lo, stmt.hi):
            bound_type = self._check_expr(bound, allow_arrays=False)
            if bound_type.kind != "integer":
                raise SemanticError("for-loop bounds must be integers", stmt.location)
        self._check_stmts(stmt.body)

    # -- expressions ----------------------------------------------------

    def _check_expr(
        self,
        expr: ast.Expr,
        allow_arrays: bool,
        statement_rank: Optional[int] = None,
    ) -> ExprType:
        if isinstance(expr, ast.IntLit):
            return ExprType("integer")
        if isinstance(expr, ast.FloatLit):
            return ExprType("float")
        if isinstance(expr, ast.BoolLit):
            return ExprType("boolean")
        if isinstance(expr, ast.VarRef):
            return self._check_var_ref(expr, allow_arrays, statement_rank)
        if isinstance(expr, ast.OffsetRef):
            return self._check_offset_ref(expr, allow_arrays)
        if isinstance(expr, ast.BinOp):
            return self._check_binop(expr, allow_arrays, statement_rank)
        if isinstance(expr, ast.UnOp):
            operand = self._check_expr(expr.operand, allow_arrays, statement_rank)
            if expr.op == "not" and operand.kind != "boolean":
                raise SemanticError("'not' requires a boolean operand", expr.location)
            if expr.op == "-" and operand.kind == "boolean":
                raise SemanticError("cannot negate a boolean", expr.location)
            return operand
        if isinstance(expr, ast.Call):
            return self._check_call(expr, allow_arrays, statement_rank)
        if isinstance(expr, ast.Reduce):
            return self._check_reduce(expr)
        raise SemanticError("unknown expression %r" % expr, expr.location)

    def _check_var_ref(
        self,
        expr: ast.VarRef,
        allow_arrays: bool,
        statement_rank: Optional[int] = None,
    ) -> ExprType:
        index_dim = index_array_dimension(expr.name)
        if index_dim is not None and expr.name not in self._symtab:
            if not allow_arrays or statement_rank is None:
                raise SemanticError(
                    "%s may only appear inside a region-scoped array statement"
                    % expr.name,
                    expr.location,
                )
            if index_dim > statement_rank:
                raise SemanticError(
                    "%s exceeds the statement region rank %d"
                    % (expr.name, statement_rank),
                    expr.location,
                )
            return ExprType("integer", statement_rank)
        symbol = self._symtab.lookup(expr.name, expr.location)
        if symbol.kind == Symbol.ARRAY:
            if not allow_arrays:
                raise SemanticError(
                    "array %r used where a scalar is required (use a reduction)"
                    % expr.name,
                    expr.location,
                )
            return ExprType(symbol.elem_kind, self.region_rank(symbol.region))
        if symbol.kind in (Symbol.SCALAR, Symbol.CONFIG):
            return ExprType(symbol.elem_kind)
        raise SemanticError(
            "%r (a %s) cannot appear in an expression" % (expr.name, symbol.kind),
            expr.location,
        )

    def _check_offset_ref(self, expr: ast.OffsetRef, allow_arrays: bool) -> ExprType:
        if not allow_arrays:
            raise SemanticError(
                "array reference %r@... used where a scalar is required" % expr.name,
                expr.location,
            )
        symbol = self._symtab.lookup(expr.name, expr.location)
        if symbol.kind != Symbol.ARRAY:
            raise SemanticError(
                "'@' applies only to arrays; %r is a %s" % (expr.name, symbol.kind),
                expr.location,
            )
        if isinstance(expr.direction, str):
            direction = self._symtab.lookup(expr.direction, expr.location)
            if direction.kind != Symbol.DIRECTION:
                raise SemanticError(
                    "%r is not a direction" % expr.direction, expr.location
                )
            expr.direction = direction.components
        rank = self.region_rank(symbol.region)
        if len(expr.direction) != rank:
            raise SemanticError(
                "direction %r has rank %d but array %r has rank %d"
                % (expr.direction, len(expr.direction), expr.name, rank),
                expr.location,
            )
        return ExprType(symbol.elem_kind, rank)

    def _check_binop(
        self, expr: ast.BinOp, allow_arrays: bool, statement_rank: Optional[int]
    ) -> ExprType:
        left = self._check_expr(expr.left, allow_arrays, statement_rank)
        right = self._check_expr(expr.right, allow_arrays, statement_rank)
        if expr.op in ("and", "or"):
            if left.kind != "boolean" or right.kind != "boolean":
                raise SemanticError(
                    "%r requires boolean operands" % expr.op, expr.location
                )
            result_kind = "boolean"
        elif expr.op in ("=", "!=", "<", "<=", ">", ">="):
            result_kind = "boolean"
        else:
            if left.kind == "boolean" or right.kind == "boolean":
                raise SemanticError(
                    "arithmetic on boolean operands is not allowed", expr.location
                )
            if expr.op == "/" or expr.op == "^":
                result_kind = "float"
            elif left.kind == "float" or right.kind == "float":
                result_kind = "float"
            else:
                result_kind = "integer"
        rank = self._merge_ranks(left, right, expr)
        return ExprType(result_kind, rank)

    def _merge_ranks(self, left: ExprType, right: ExprType, expr: ast.Expr) -> int:
        if left.is_array and right.is_array:
            if left.rank != right.rank:
                raise SemanticError(
                    "rank mismatch in binary operation: %d vs %d"
                    % (left.rank, right.rank),
                    expr.location,
                )
            return left.rank
        return max(left.rank, right.rank)

    def _check_call(
        self, expr: ast.Call, allow_arrays: bool, statement_rank: Optional[int]
    ) -> ExprType:
        spec = INTRINSICS.get(expr.name)
        if spec is None:
            raise SemanticError("unknown function %r" % expr.name, expr.location)
        arity, result_kind = spec
        if len(expr.args) != arity:
            raise SemanticError(
                "%s expects %d argument(s), got %d"
                % (expr.name, arity, len(expr.args)),
                expr.location,
            )
        arg_types = [
            self._check_expr(arg, allow_arrays, statement_rank) for arg in expr.args
        ]
        rank = 0
        kind = result_kind
        for arg_type in arg_types:
            if arg_type.kind == "boolean":
                raise SemanticError(
                    "%s does not accept boolean arguments" % expr.name, expr.location
                )
            if arg_type.is_array:
                if rank and arg_type.rank != rank:
                    raise SemanticError(
                        "rank mismatch in call to %s" % expr.name, expr.location
                    )
                rank = arg_type.rank
            if kind is None:
                kind = arg_type.kind
            elif result_kind is None and arg_type.kind == "float":
                kind = "float"
        return ExprType(kind or "float", rank)

    def _check_reduce(self, expr: ast.Reduce) -> ExprType:
        reduce_rank: Optional[int] = None
        if expr.region is not None:
            expr.region = self._resolve_region(expr.region)
            reduce_rank = self.region_rank(expr.region)
        operand = self._check_expr(
            expr.operand, allow_arrays=True, statement_rank=reduce_rank
        )
        if not operand.is_array:
            raise SemanticError(
                "reduction operand must be an array expression", expr.location
            )
        if expr.region is not None:
            rank = self.region_rank(expr.region)
            if rank != operand.rank:
                raise SemanticError(
                    "reduction region rank %d does not match operand rank %d"
                    % (rank, operand.rank),
                    expr.location,
                )
        if operand.kind == "boolean":
            raise SemanticError("cannot reduce a boolean array", expr.location)
        return ExprType(operand.kind, 0)


def analyze(program: ast.Program) -> CheckedProgram:
    """Run semantic analysis on a parsed program."""
    return Checker(program).check()


def check_source(source: str) -> CheckedProgram:
    """Parse and analyze source text in one step."""
    from repro.lang.parser import parse

    return analyze(parse(source))
