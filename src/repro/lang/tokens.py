"""Token definitions for the mini-ZPL source language.

The language implemented here is the core of ZPL as described in Section 2.1
of the paper: regions, parallel arrays, ``@``-offset references, reductions,
plus enough sequential control flow (``for``/``if``/``while``) to express the
benchmark programs (EP, SP, Tomcatv, Simple, Fibro, Frac).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.util.errors import SourceLocation


class TokenType(enum.Enum):
    """Every terminal of the grammar."""

    # Literals and identifiers.
    IDENT = "identifier"
    INT = "integer literal"
    FLOAT = "float literal"

    # Keywords.
    PROGRAM = "program"
    CONFIG = "config"
    REGION = "region"
    DIRECTION = "direction"
    VAR = "var"
    PROCEDURE = "procedure"
    BEGIN = "begin"
    END = "end"
    FOR = "for"
    TO = "to"
    DOWNTO = "downto"
    DO = "do"
    IF = "if"
    THEN = "then"
    ELSE = "else"
    ELSIF = "elsif"
    WHILE = "while"
    WRAP = "wrap"
    REFLECT = "reflect"
    INTEGER = "integer"
    FLOATKW = "float"
    BOOLEAN = "boolean"
    AND = "and"
    OR = "or"
    NOT = "not"
    TRUE = "true"
    FALSE = "false"

    # Operators and punctuation.
    ASSIGN = ":="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    CARET = "^"
    PERCENT = "%"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "="
    NE = "!="
    AT = "@"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"
    COLON = ":"
    DOTDOT = ".."
    SUMRED = "+<<"
    PRODRED = "*<<"
    MAXRED = "max<<"
    MINRED = "min<<"
    EOF = "end of input"


KEYWORDS = {
    "program": TokenType.PROGRAM,
    "config": TokenType.CONFIG,
    "region": TokenType.REGION,
    "direction": TokenType.DIRECTION,
    "var": TokenType.VAR,
    "procedure": TokenType.PROCEDURE,
    "begin": TokenType.BEGIN,
    "end": TokenType.END,
    "for": TokenType.FOR,
    "to": TokenType.TO,
    "downto": TokenType.DOWNTO,
    "do": TokenType.DO,
    "if": TokenType.IF,
    "then": TokenType.THEN,
    "else": TokenType.ELSE,
    "elsif": TokenType.ELSIF,
    "while": TokenType.WHILE,
    "wrap": TokenType.WRAP,
    "reflect": TokenType.REFLECT,
    "integer": TokenType.INTEGER,
    "float": TokenType.FLOATKW,
    "boolean": TokenType.BOOLEAN,
    "and": TokenType.AND,
    "or": TokenType.OR,
    "not": TokenType.NOT,
    "true": TokenType.TRUE,
    "false": TokenType.FALSE,
}

REDUCTION_OPS = {
    TokenType.SUMRED: "+",
    TokenType.PRODRED: "*",
    TokenType.MAXRED: "max",
    TokenType.MINRED: "min",
}


class Token:
    """A single lexical token with its source location."""

    __slots__ = ("type", "text", "location", "value")

    def __init__(
        self,
        type: TokenType,
        text: str,
        location: SourceLocation,
        value: Optional[object] = None,
    ) -> None:
        self.type = type
        self.text = text
        self.location = location
        self.value = value

    def __repr__(self) -> str:
        return "Token(%s, %r, %s)" % (self.type.name, self.text, self.location)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Token)
            and self.type == other.type
            and self.text == other.text
        )

    def __hash__(self) -> int:
        return hash((self.type, self.text))
