"""IR expression trees.

After normalization every right-hand side is an element-wise function over
constant-offset array references and scalar reads — exactly the ``f`` of the
normal form ``[R] f(A1@d1, ..., As@ds)``.  Reductions (``Reduce``) appear
only in scalar statements; normalization hoists them out of array contexts.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.util.vectors import IntVector, format_vector, is_zero


class IRExpr:
    """Base class for IR expressions."""

    __slots__ = ()

    def array_refs(self) -> List["ArrayRef"]:
        """All array references in this expression, in source order."""
        refs: List[ArrayRef] = []
        for node in self.walk():
            if isinstance(node, ArrayRef):
                refs.append(node)
        return refs

    def scalar_refs(self) -> List["ScalarRef"]:
        """All scalar reads in this expression, in source order."""
        return [node for node in self.walk() if isinstance(node, ScalarRef)]

    def walk(self) -> Iterator["IRExpr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            for node in child.walk():
                yield node

    def children(self) -> Sequence["IRExpr"]:
        return ()

    def map(self, fn: Callable[["IRExpr"], Optional["IRExpr"]]) -> "IRExpr":
        """Rebuild the tree bottom-up; ``fn`` may replace any node.

        ``fn`` receives each node (with already-mapped children) and returns
        a replacement or ``None`` to keep the node.
        """
        rebuilt = self._rebuild([child.map(fn) for child in self.children()])
        replacement = fn(rebuilt)
        return replacement if replacement is not None else rebuilt

    def _rebuild(self, children: List["IRExpr"]) -> "IRExpr":
        return self

    def op_count(self) -> int:
        """Number of arithmetic operation nodes (for the flop cost model)."""
        count = 0
        for node in self.walk():
            if isinstance(node, (BinOp, UnOp, Call)):
                count += 1
        return count


class Const(IRExpr):
    """A literal constant (int, float or bool)."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __repr__(self) -> str:
        return "Const(%r)" % (self.value,)

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, float) else str(self.value)


class ScalarRef(IRExpr):
    """A read of a scalar variable or configuration constant."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return "ScalarRef(%s)" % self.name

    def __str__(self) -> str:
        return self.name


class ArrayRef(IRExpr):
    """An element-wise array reference ``A@d`` at constant offset ``d``."""

    __slots__ = ("name", "offset")

    def __init__(self, name: str, offset: IntVector) -> None:
        self.name = name
        self.offset = tuple(int(c) for c in offset)

    def __repr__(self) -> str:
        return "ArrayRef(%s@%s)" % (self.name, format_vector(self.offset))

    def __str__(self) -> str:
        if is_zero(self.offset):
            return self.name
        return "%s@%s" % (self.name, format_vector(self.offset))


class IndexRef(IRExpr):
    """ZPL's ``Index1``/``Index2``/... pseudo-arrays.

    ``IndexRef(d)`` evaluates, at each point of the statement's region, to
    the point's coordinate along dimension ``d`` (1-based).  Index arrays are
    never written, occupy no storage, and induce no dependences.
    """

    __slots__ = ("dim",)

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise ValueError("index dimension must be >= 1, got %d" % dim)
        self.dim = dim

    def __repr__(self) -> str:
        return "IndexRef(%d)" % self.dim

    def __str__(self) -> str:
        return "Index%d" % self.dim


class BinOp(IRExpr):
    """A binary arithmetic/logical/comparison operation."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: IRExpr, right: IRExpr) -> None:
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Sequence[IRExpr]:
        return (self.left, self.right)

    def _rebuild(self, children: List[IRExpr]) -> IRExpr:
        return BinOp(self.op, children[0], children[1])

    def __repr__(self) -> str:
        return "BinOp(%r, %r, %r)" % (self.op, self.left, self.right)

    def __str__(self) -> str:
        return "(%s %s %s)" % (self.left, self.op, self.right)


class UnOp(IRExpr):
    """A unary operation (negation or logical not)."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: IRExpr) -> None:
        self.op = op
        self.operand = operand

    def children(self) -> Sequence[IRExpr]:
        return (self.operand,)

    def _rebuild(self, children: List[IRExpr]) -> IRExpr:
        return UnOp(self.op, children[0])

    def __repr__(self) -> str:
        return "UnOp(%r, %r)" % (self.op, self.operand)

    def __str__(self) -> str:
        return "(%s%s)" % (self.op if self.op != "not" else "not ", self.operand)


class Call(IRExpr):
    """An intrinsic call (sqrt, exp, min, ...)."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[IRExpr]) -> None:
        self.name = name
        self.args = tuple(args)

    def children(self) -> Sequence[IRExpr]:
        return self.args

    def _rebuild(self, children: List[IRExpr]) -> IRExpr:
        return Call(self.name, children)

    def __repr__(self) -> str:
        return "Call(%s, %r)" % (self.name, list(self.args))

    def __str__(self) -> str:
        return "%s(%s)" % (self.name, ", ".join(str(a) for a in self.args))


class Reduce(IRExpr):
    """A full reduction of an element-wise array expression to a scalar.

    Only legal inside scalar statements; ``region`` is the index set reduced
    over and ``operand`` is an element-wise IR expression.
    """

    __slots__ = ("op", "region", "operand")

    def __init__(self, op: str, region, operand: IRExpr) -> None:
        self.op = op
        self.region = region
        self.operand = operand

    def children(self) -> Sequence[IRExpr]:
        return (self.operand,)

    def _rebuild(self, children: List[IRExpr]) -> IRExpr:
        return Reduce(self.op, self.region, children[0])

    def __repr__(self) -> str:
        return "Reduce(%r, %r, %r)" % (self.op, self.region, self.operand)

    def __str__(self) -> str:
        return "%s<< %s %s" % (self.op, self.region, self.operand)


def substitute_refs(
    expr: IRExpr, replace: Callable[[ArrayRef], Optional[IRExpr]]
) -> IRExpr:
    """Replace array references for which ``replace`` returns a new node."""

    def visit(node: IRExpr) -> Optional[IRExpr]:
        if isinstance(node, ArrayRef):
            return replace(node)
        return None

    return expr.map(visit)


def collect_ref_tuples(expr: IRExpr) -> List[Tuple[str, IntVector]]:
    """All (array name, offset) pairs referenced by ``expr``."""
    return [(ref.name, ref.offset) for ref in expr.array_refs()]
