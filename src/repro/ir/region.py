"""Regions: the rectangular index sets of the normal form.

A region ``[l1..h1, ..., ln..hn]`` defines the extent of a normalized array
statement's computation (Section 2.1).  Bounds are affine expressions so that
dynamic regions like ``[i, 1..m]`` (row ``i`` of a 2-D array, inside a
sequential loop) are first-class.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

from repro.ir.linexpr import LinearExpr
from repro.util.errors import NormalizationError
from repro.util.vectors import IntVector


class Region:
    """An immutable rank-n rectangular index set with affine bounds."""

    __slots__ = ("dims", "_hash")

    def __init__(self, dims: Sequence[Tuple[LinearExpr, LinearExpr]]) -> None:
        self.dims: Tuple[Tuple[LinearExpr, LinearExpr], ...] = tuple(
            (LinearExpr.coerce(lo), LinearExpr.coerce(hi)) for lo, hi in dims
        )
        if not self.dims:
            raise NormalizationError("regions must have rank >= 1")
        self._hash = hash(self.dims)

    # -- constructors ----------------------------------------------------

    @staticmethod
    def literal(*bounds: Tuple[int, int]) -> "Region":
        """Build a constant region from ``(lo, hi)`` integer pairs."""
        return Region([(LinearExpr(lo), LinearExpr(hi)) for lo, hi in bounds])

    # -- queries ----------------------------------------------------------

    @property
    def rank(self) -> int:
        return len(self.dims)

    def extents(self) -> Tuple[LinearExpr, ...]:
        """Symbolic extent ``hi - lo + 1`` per dimension."""
        return tuple(hi - lo + 1 for lo, hi in self.dims)

    def static_size(self, env: Mapping[str, int]) -> int:
        """Number of elements, evaluating extents under ``env``.

        Extents whose free variables cancel (degenerate dims like ``i..i``)
        evaluate without the variable being bound.
        """
        size = 1
        for extent in self.extents():
            size *= extent.substitute(env).evaluate({})
        return size

    def concrete_bounds(self, env: Mapping[str, int]) -> Tuple[Tuple[int, int], ...]:
        """Evaluate all bounds to integers under ``env``."""
        return tuple(
            (lo.evaluate(env), hi.evaluate(env)) for lo, hi in self.dims
        )

    def is_empty(self, env: Mapping[str, int]) -> bool:
        return any(lo > hi for lo, hi in self.concrete_bounds(env))

    def free_variables(self) -> Tuple[str, ...]:
        names = []
        for lo, hi in self.dims:
            for name in lo.free_variables() + hi.free_variables():
                if name not in names:
                    names.append(name)
        return tuple(names)

    def substitute(self, env: Mapping[str, int]) -> "Region":
        return Region(
            [(lo.substitute(env), hi.substitute(env)) for lo, hi in self.dims]
        )

    def shifted(self, offset: IntVector) -> "Region":
        """The region translated by an integer offset vector."""
        if len(offset) != self.rank:
            raise NormalizationError(
                "offset rank %d does not match region rank %d"
                % (len(offset), self.rank)
            )
        return Region(
            [(lo + d, hi + d) for (lo, hi), d in zip(self.dims, offset)]
        )

    def expanded(self, halo: IntVector) -> "Region":
        """The region grown by ``halo`` elements on both sides per dimension."""
        if len(halo) != self.rank:
            raise NormalizationError(
                "halo rank %d does not match region rank %d" % (len(halo), self.rank)
            )
        return Region(
            [(lo - h, hi + h) for (lo, hi), h in zip(self.dims, halo)]
        )

    # -- dunders ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Region) and self.dims == other.dims

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "Region(%s)" % self

    def __str__(self) -> str:
        parts = []
        for lo, hi in self.dims:
            if lo == hi:
                parts.append(str(lo))
            else:
                parts.append("%s..%s" % (lo, hi))
        return "[" + ", ".join(parts) + "]"
