"""Constant folding and algebraic simplification of IR expressions.

Normalization folds configuration constants into literals, which leaves
right-hand sides full of foldable subtrees (``2.0 * 0.5``, ``x + 0``,
``1 * y``...).  This pass cleans them up before scalarization: fewer
operation nodes mean fewer flops in the generated loops and in the cost
model — the same local simplifications the ZPL compiler's back end relied
on its C compiler for.

The pass is semantics-preserving under IEEE floating point only for the
rewrites listed here; in particular ``x * 0 -> 0`` is *not* performed
(it would drop NaN/inf propagation) and reassociation is never attempted.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.ir import expr as ir
from repro.ir.program import IRProgram
from repro.ir.statement import (
    ArrayStatement,
    IfStatement,
    IRStatement,
    LoopStatement,
    ScalarStatement,
    WhileStatement,
)

_FOLDABLE_CALLS = {
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "atan": math.atan,
    "abs": abs,
    "min": min,
    "max": max,
    "pow": math.pow,
}


def _const_value(node: ir.IRExpr):
    if isinstance(node, ir.Const) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return node.value
    return None


def _is_zero(node: ir.IRExpr) -> bool:
    value = _const_value(node)
    return value == 0

def _is_one(node: ir.IRExpr) -> bool:
    value = _const_value(node)
    return value == 1


def _fold_binop(node: ir.BinOp) -> Optional[ir.IRExpr]:
    left = _const_value(node.left)
    right = _const_value(node.right)

    if left is not None and right is not None:
        try:
            if node.op == "+":
                return ir.Const(left + right)
            if node.op == "-":
                return ir.Const(left - right)
            if node.op == "*":
                return ir.Const(left * right)
            if node.op == "/":
                return ir.Const(left / right)
            if node.op == "%":
                return ir.Const(left % right)
            if node.op == "^":
                return ir.Const(float(left) ** right)
        except (ZeroDivisionError, OverflowError, ValueError):
            return None  # keep the runtime behaviour (error / inf)
        return None

    # Identity elements.  (x*0 and 0/x are NOT folded: NaN/inf semantics.)
    if node.op == "+":
        if _is_zero(node.left):
            return node.right
        if _is_zero(node.right):
            return node.left
    elif node.op == "-":
        if _is_zero(node.right):
            return node.left
    elif node.op == "*":
        if _is_one(node.left):
            return node.right
        if _is_one(node.right):
            return node.left
    elif node.op == "/":
        if _is_one(node.right):
            return node.left
    elif node.op == "^":
        if _is_one(node.right):
            return node.left
    return None


def _fold_unop(node: ir.UnOp) -> Optional[ir.IRExpr]:
    value = _const_value(node.operand)
    if node.op == "-" and value is not None:
        return ir.Const(-value)
    if (
        node.op == "-"
        and isinstance(node.operand, ir.UnOp)
        and node.operand.op == "-"
    ):
        return node.operand.operand
    return None


def _fold_call(node: ir.Call) -> Optional[ir.IRExpr]:
    fn = _FOLDABLE_CALLS.get(node.name)
    if fn is None:
        return None
    values = [_const_value(arg) for arg in node.args]
    if any(value is None for value in values):
        return None
    try:
        result = fn(*values)
    except (ValueError, OverflowError, ZeroDivisionError):
        return None
    return ir.Const(float(result))


def simplify_expr(expr: ir.IRExpr) -> ir.IRExpr:
    """Fold constants and identities bottom-up; semantics-preserving."""

    def visit(node: ir.IRExpr) -> Optional[ir.IRExpr]:
        if isinstance(node, ir.BinOp):
            return _fold_binop(node)
        if isinstance(node, ir.UnOp):
            return _fold_unop(node)
        if isinstance(node, ir.Call):
            return _fold_call(node)
        return None

    return expr.map(visit)


def simplify_program(program: IRProgram) -> IRProgram:
    """Simplify every statement's expressions in place; returns the program."""

    def walk(body: List[IRStatement]) -> None:
        for stmt in body:
            if isinstance(stmt, ArrayStatement):
                stmt.rhs = simplify_expr(stmt.rhs)
            elif isinstance(stmt, ScalarStatement):
                stmt.rhs = simplify_expr(stmt.rhs)
            elif isinstance(stmt, LoopStatement):
                stmt.lo = simplify_expr(stmt.lo)
                stmt.hi = simplify_expr(stmt.hi)
                walk(stmt.body)
            elif isinstance(stmt, IfStatement):
                stmt.cond = simplify_expr(stmt.cond)
                walk(stmt.then_body)
                walk(stmt.else_body)
            elif isinstance(stmt, WhileStatement):
                stmt.cond = simplify_expr(stmt.cond)
                walk(stmt.body)

    walk(program.body)
    return program
