"""Constant folding and algebraic simplification of IR expressions.

Normalization folds configuration constants into literals, which leaves
right-hand sides full of foldable subtrees (``2.0 * 0.5``, ``x + 0``,
``1 * y``...).  This pass cleans them up before scalarization: fewer
operation nodes mean fewer flops in the generated loops and in the cost
model — the same local simplifications the ZPL compiler's back end relied
on its C compiler for.

The pass is semantics-preserving under IEEE floating point only for the
rewrites listed here; in particular ``x * 0 -> 0`` is *not* performed
(it would drop NaN/inf propagation) and reassociation is never attempted.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional

from repro.ir import expr as ir
from repro.ir.program import IRProgram
from repro.ir.statement import (
    ArrayStatement,
    IfStatement,
    IRStatement,
    LoopStatement,
    ScalarStatement,
    WhileStatement,
)

_FOLDABLE_CALLS = {
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "atan": math.atan,
    "abs": abs,
    "min": min,
    "max": max,
    "pow": math.pow,
}

#: Intrinsics closed over the integers: int arguments produce an int
#: result under the runtime semantics (np.abs/np.minimum/np.maximum on
#: int64 operands stay int64), so their folds must stay int too.
_INT_CLOSED_CALLS = frozenset(["abs", "min", "max"])

#: numpy promotion order (mirrors ``emit_common._KIND_RANK``; duplicated
#: here so the IR layer does not import the scalarize layer).
_KIND_RANK = {"boolean": 0, "integer": 1, "float": 2}


def join_kinds(left: str, right: str) -> str:
    return left if _KIND_RANK[left] >= _KIND_RANK[right] else right


def _const_value(node: ir.IRExpr):
    if isinstance(node, ir.Const) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return node.value
    return None


def _is_zero(node: ir.IRExpr) -> bool:
    value = _const_value(node)
    return value == 0

def _is_one(node: ir.IRExpr) -> bool:
    value = _const_value(node)
    return value == 1


def _strict_kind(
    expr: ir.IRExpr,
    array_kinds: Mapping[str, str],
    scalar_kinds: Mapping[str, str],
) -> Optional[str]:
    """The element kind of ``expr``, or ``None`` when it cannot be proved.

    Unlike :func:`repro.scalarize.emit_common.infer_expr_kind` (which
    defaults unknown references to ``"float"`` because its callers hold
    complete kind tables), this variant propagates *unknown*: identity
    rewrites must only fire when the kind — and with it the IEEE
    signed-zero and dtype-promotion behaviour — is certain.
    """
    if isinstance(expr, ir.Const):
        if isinstance(expr.value, bool):
            return "boolean"
        if isinstance(expr.value, int):
            return "integer"
        if isinstance(expr.value, float):
            return "float"
        return None
    if isinstance(expr, ir.ScalarRef):
        return scalar_kinds.get(expr.name)
    if isinstance(expr, ir.ArrayRef):
        return array_kinds.get(expr.name)
    if isinstance(expr, ir.IndexRef):
        return "integer"
    if isinstance(expr, ir.BinOp):
        if expr.op in ("/", "^"):
            return "float"
        if expr.op in ("<", "<=", ">", ">=", "=", "!=", "and", "or"):
            return "boolean"
        left = _strict_kind(expr.left, array_kinds, scalar_kinds)
        right = _strict_kind(expr.right, array_kinds, scalar_kinds)
        if left is None or right is None:
            return None
        return join_kinds(left, right)
    if isinstance(expr, ir.UnOp):
        if expr.op == "not":
            return "boolean"
        return _strict_kind(expr.operand, array_kinds, scalar_kinds)
    if isinstance(expr, ir.Call):
        if expr.name in ("floor", "ceil"):
            return "integer"
        if expr.name in ("abs", "min", "max", "mod", "sign"):
            kind = "boolean"
            for arg in expr.args:
                arg_kind = _strict_kind(arg, array_kinds, scalar_kinds)
                if arg_kind is None:
                    return None
                kind = join_kinds(kind, arg_kind)
            return kind
        if expr.name in ("sqrt", "exp", "log", "sin", "cos", "tan", "atan"):
            return "float"
        # ``pow`` is deliberately None: np.power keeps int operands int
        # while math.pow floats them, so its kind cannot be certified.
        return None
    if isinstance(expr, ir.Reduce):
        return _strict_kind(expr.operand, array_kinds, scalar_kinds)
    return None


def _is_neg_zero(node: ir.IRExpr) -> bool:
    value = _const_value(node)
    return (
        isinstance(value, float)
        and value == 0.0
        and math.copysign(1.0, value) < 0
    )


def _fold_identity(
    node: ir.BinOp,
    array_kinds: Mapping[str, str],
    scalar_kinds: Mapping[str, str],
) -> Optional[ir.IRExpr]:
    """Kind-gated identity-element rewrites.

    Every rewrite here must preserve IEEE bit patterns *and* the result
    dtype, so each one is gated on the proved kind of the surviving
    operand:

    * ``x + 0.0 -> x`` is wrong for ``x = -0.0`` (the sum is ``+0.0``
      under round-to-nearest); only ``x + (-0.0)`` preserves every float
      ``x``, and only int ``x + 0`` preserves every int ``x``.
    * ``x - 0.0 -> x`` *is* exact for floats (``-0.0 - 0.0 == -0.0``),
      but ``x - (-0.0)`` is not (``-0.0 - (-0.0) == +0.0``).
    * ``x * 1`` / ``x / 1`` / ``x ^ 1`` are value-exact, but ``/`` and
      ``^`` promote int operands to float, and an int literal ``1`` on a
      ``*`` keeps int-typed ``x`` int while ``1.0`` would promote it —
      so each requires the operand kind that makes the fold dtype-exact.
    * boolean operands are never rewritten (``True + 0`` is int ``1`` at
      runtime, not ``True``).
    """

    def kind_of(side: ir.IRExpr) -> Optional[str]:
        return _strict_kind(side, array_kinds, scalar_kinds)

    def zero_fold_ok(zero: ir.IRExpr, keep: ir.IRExpr) -> bool:
        # x + 0 (int zero) is exact for int x; x + (-0.0) for float x.
        value = _const_value(zero)
        if not _is_zero(zero):
            return False
        if isinstance(value, int):
            return kind_of(keep) == "integer"
        return _is_neg_zero(zero) and kind_of(keep) == "float"

    if node.op == "+":
        if zero_fold_ok(node.left, node.right):
            return node.right
        if zero_fold_ok(node.right, node.left):
            return node.left
    elif node.op == "-":
        if _is_zero(node.right) and not _is_neg_zero(node.right):
            value = _const_value(node.right)
            kind = kind_of(node.left)
            if isinstance(value, int):
                # x - 0 subtracts +0 after promotion: exact for both.
                if kind in ("integer", "float"):
                    return node.left
            elif kind == "float":
                return node.left
    elif node.op == "*":
        if _is_one(node.left):
            node = ir.BinOp(node.op, node.right, node.left)
        if _is_one(node.right):
            value = _const_value(node.right)
            kind = kind_of(node.left)
            if isinstance(value, int):
                if kind in ("integer", "float"):
                    return node.left
            elif kind == "float":
                return node.left
    elif node.op == "/":
        # Division promotes to float: only a float operand keeps dtype.
        if _is_one(node.right) and kind_of(node.left) == "float":
            return node.left
    elif node.op == "^":
        if _is_one(node.right) and kind_of(node.left) == "float":
            return node.left
    return None


def _fold_binop(
    node: ir.BinOp,
    array_kinds: Mapping[str, str],
    scalar_kinds: Mapping[str, str],
) -> Optional[ir.IRExpr]:
    left = _const_value(node.left)
    right = _const_value(node.right)

    if left is not None and right is not None:
        try:
            if node.op == "+":
                return ir.Const(left + right)
            if node.op == "-":
                return ir.Const(left - right)
            if node.op == "*":
                return ir.Const(left * right)
            if node.op == "/":
                return ir.Const(left / right)
            if node.op == "%":
                return ir.Const(left % right)
            if node.op == "^":
                return ir.Const(float(left) ** right)
        except (ZeroDivisionError, OverflowError, ValueError):
            return None  # keep the runtime behaviour (error / inf)
        return None

    # Identity elements.  (x*0 and 0/x are NOT folded: NaN/inf semantics.)
    return _fold_identity(node, array_kinds, scalar_kinds)


def _fold_unop(node: ir.UnOp) -> Optional[ir.IRExpr]:
    value = _const_value(node.operand)
    if node.op == "-" and value is not None:
        return ir.Const(-value)
    if (
        node.op == "-"
        and isinstance(node.operand, ir.UnOp)
        and node.operand.op == "-"
    ):
        return node.operand.operand
    return None


def _fold_call(node: ir.Call) -> Optional[ir.IRExpr]:
    fn = _FOLDABLE_CALLS.get(node.name)
    if fn is None:
        return None
    values = [_const_value(arg) for arg in node.args]
    if any(value is None for value in values):
        return None
    all_int = all(isinstance(value, int) for value in values)
    try:
        if node.name == "pow" and all_int and values[1] >= 0:
            # np.power on int operands stays int; math.pow would float
            # the fold.  Negative exponents divide, hence go float.
            result = values[0] ** values[1]
        else:
            result = fn(*values)
    except (ValueError, OverflowError, ZeroDivisionError):
        return None
    if all_int and (
        node.name in _INT_CLOSED_CALLS
        or (node.name == "pow" and values[1] >= 0)
    ):
        return ir.Const(int(result))
    return ir.Const(float(result))


def simplify_expr(
    expr: ir.IRExpr,
    array_kinds: Optional[Mapping[str, str]] = None,
    scalar_kinds: Optional[Mapping[str, str]] = None,
) -> ir.IRExpr:
    """Fold constants and identities bottom-up; semantics-preserving.

    The kind maps gate the identity-element rewrites: without them only
    rewrites that are exact for *every* possible operand kind fire (see
    :func:`_fold_identity`).
    """
    array_kinds = array_kinds or {}
    scalar_kinds = scalar_kinds or {}

    def visit(node: ir.IRExpr) -> Optional[ir.IRExpr]:
        if isinstance(node, ir.BinOp):
            return _fold_binop(node, array_kinds, scalar_kinds)
        if isinstance(node, ir.UnOp):
            return _fold_unop(node)
        if isinstance(node, ir.Call):
            return _fold_call(node)
        return None

    return expr.map(visit)


def program_kind_maps(program: IRProgram):
    """(array, scalar) element-kind tables for kind-gated rewrites."""
    array_kinds: Dict[str, str] = {
        name: info.elem_kind for name, info in program.arrays.items()
    }
    scalar_kinds: Dict[str, str] = {
        name: info.kind for name, info in program.scalars.items()
    }
    for name, value in program.configs.items():
        if isinstance(value, bool):
            scalar_kinds.setdefault(name, "boolean")
        elif isinstance(value, int):
            scalar_kinds.setdefault(name, "integer")
        elif isinstance(value, float):
            scalar_kinds.setdefault(name, "float")
    return array_kinds, scalar_kinds


def simplify_program(program: IRProgram) -> IRProgram:
    """Simplify every statement's expressions in place; returns the program."""
    array_kinds, scalar_kinds = program_kind_maps(program)

    def simplify(expr: ir.IRExpr) -> ir.IRExpr:
        return simplify_expr(expr, array_kinds, scalar_kinds)

    def walk(body: List[IRStatement]) -> None:
        for stmt in body:
            if isinstance(stmt, ArrayStatement):
                stmt.rhs = simplify(stmt.rhs)
            elif isinstance(stmt, ScalarStatement):
                stmt.rhs = simplify(stmt.rhs)
            elif isinstance(stmt, LoopStatement):
                stmt.lo = simplify(stmt.lo)
                stmt.hi = simplify(stmt.hi)
                walk(stmt.body)
            elif isinstance(stmt, IfStatement):
                stmt.cond = simplify(stmt.cond)
                walk(stmt.then_body)
                walk(stmt.else_body)
            elif isinstance(stmt, WhileStatement):
                stmt.cond = simplify(stmt.cond)
                walk(stmt.body)

    walk(program.body)
    return program
