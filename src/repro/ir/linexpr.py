"""Affine integer expressions for region bounds.

Region bounds in the normal form are affine in the configuration constants
and enclosing loop variables (e.g. ``[2..n-1, 1..m]`` or the dynamic row
region ``[i, 1..m]`` inside a ``for`` loop).  :class:`LinearExpr` gives these
bounds a canonical, hashable representation so that regions can be compared
structurally — condition (i) of Definition 5 requires statements in a fusible
cluster to operate under *the same* region.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple, Union

from repro.util.errors import NormalizationError

Number = Union[int, "LinearExpr"]


class LinearExpr:
    """An immutable affine expression ``const + sum(coef_i * var_i)``."""

    __slots__ = ("const", "terms", "_hash")

    def __init__(self, const: int = 0, terms: Mapping[str, int] = ()) -> None:
        self.const = int(const)
        cleaned: Dict[str, int] = {}
        items = terms.items() if isinstance(terms, Mapping) else terms
        for name, coef in items:
            coef = int(coef)
            if coef:
                cleaned[name] = cleaned.get(name, 0) + coef
        self.terms: Tuple[Tuple[str, int], ...] = tuple(sorted(cleaned.items()))
        self._hash = hash((self.const, self.terms))

    # -- constructors ----------------------------------------------------

    @staticmethod
    def constant(value: int) -> "LinearExpr":
        return LinearExpr(value)

    @staticmethod
    def variable(name: str) -> "LinearExpr":
        return LinearExpr(0, {name: 1})

    @staticmethod
    def coerce(value: Number) -> "LinearExpr":
        if isinstance(value, LinearExpr):
            return value
        return LinearExpr(int(value))

    # -- algebra ----------------------------------------------------------

    def __add__(self, other: Number) -> "LinearExpr":
        other = LinearExpr.coerce(other)
        terms = dict(self.terms)
        for name, coef in other.terms:
            terms[name] = terms.get(name, 0) + coef
        return LinearExpr(self.const + other.const, terms)

    __radd__ = __add__

    def __sub__(self, other: Number) -> "LinearExpr":
        return self + LinearExpr.coerce(other).scaled(-1)

    def __rsub__(self, other: Number) -> "LinearExpr":
        return LinearExpr.coerce(other) - self

    def __neg__(self) -> "LinearExpr":
        return self.scaled(-1)

    def scaled(self, factor: int) -> "LinearExpr":
        return LinearExpr(
            self.const * factor, {name: coef * factor for name, coef in self.terms}
        )

    def __mul__(self, other: Number) -> "LinearExpr":
        """Multiply; at least one side must be constant (affine closure)."""
        other = LinearExpr.coerce(other)
        if not other.terms:
            return self.scaled(other.const)
        if not self.terms:
            return other.scaled(self.const)
        raise NormalizationError(
            "non-affine product of %s and %s in a region bound" % (self, other)
        )

    __rmul__ = __mul__

    # -- queries ----------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def free_variables(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.terms)

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Fully evaluate under ``env``; missing variables are an error."""
        total = self.const
        for name, coef in self.terms:
            if name not in env:
                raise NormalizationError(
                    "cannot evaluate %s: %r is unbound" % (self, name)
                )
            total += coef * int(env[name])
        return total

    def substitute(self, env: Mapping[str, int]) -> "LinearExpr":
        """Partially evaluate: replace any variables present in ``env``."""
        const = self.const
        terms: Dict[str, int] = {}
        for name, coef in self.terms:
            if name in env:
                const += coef * int(env[name])
            else:
                terms[name] = coef
        return LinearExpr(const, terms)

    # -- dunders ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.is_constant and self.const == other
        return (
            isinstance(other, LinearExpr)
            and self.const == other.const
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "LinearExpr(%s)" % self

    def __str__(self) -> str:
        parts = []
        for name, coef in self.terms:
            if coef == 1:
                parts.append(name)
            elif coef == -1:
                parts.append("-%s" % name)
            else:
                parts.append("%d*%s" % (coef, name))
        if self.const or not parts:
            parts.append(str(self.const))
        text = parts[0]
        for part in parts[1:]:
            text += " - %s" % part[1:] if part.startswith("-") else " + %s" % part
        return text
