"""Normalization: lower the checked AST into normal-form IR.

The normal form (Section 2.1) requires that (i) no array is both read and
written by one statement, (ii) all arrays in a statement share a rank, and
(iii) the statement's extent is a region and all references are constant
offsets from it.  The front end guarantees (ii) and (iii) syntactically; this
pass enforces (i) by splitting offending statements through a fresh
*compiler temporary*::

    [R] A := A@(1,0) + B      ==>      [R] _T1 := A@(1,0) + B
                                       [R] A   := _T1

Compiler temporaries are flagged so the evaluation can distinguish
compiler-array contraction (the ``c1`` strategy) from user-array contraction
(``c2``).  Reductions inside array statements are hoisted into preceding
scalar statements, keeping array right-hand sides element-wise.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.ir import expr as ir
from repro.ir.linexpr import LinearExpr
from repro.ir.program import ArrayInfo, IRProgram, ScalarInfo
from repro.ir.region import Region
from repro.ir.statement import (
    ArrayStatement,
    BoundaryStatement,
    IfStatement,
    IRStatement,
    LoopStatement,
    ReductionStatement,
    ScalarStatement,
    WhileStatement,
)
from repro.lang import ast_nodes as ast
from repro.lang.sema import CheckedProgram, Symbol, index_array_dimension
from repro.util.errors import NormalizationError
from repro.util.vectors import zero


class Normalizer:
    """Lowers a :class:`CheckedProgram` to an :class:`IRProgram`."""

    #: Valid self-temp policies: "always" inserts a compiler temporary for
    #: every statement that reads its own target (the paper's ZPL technique);
    #: "zero_offset" elides the temporary when all self-reads are at offset
    #: zero (element-wise self-updates are safe in any loop order);
    #: "reversal" additionally elides it when some loop structure makes every
    #: self-read reference not-yet-written elements (how the Cray F90 and IBM
    #: compilers behave on Figure 5's fragments (4) and (5)).
    SELF_TEMP_POLICIES = ("always", "zero_offset", "reversal")

    def __init__(
        self,
        checked: CheckedProgram,
        config_overrides: Optional[Mapping[str, object]] = None,
        self_temp_policy: str = "always",
    ) -> None:
        if self_temp_policy not in self.SELF_TEMP_POLICIES:
            raise NormalizationError(
                "unknown self-temp policy %r" % self_temp_policy
            )
        self._checked = checked
        self._symtab = checked.symtab
        self._self_temp_policy = self_temp_policy
        self._overrides = dict(config_overrides or {})
        self._configs: Dict[str, object] = {}
        self._regions: Dict[str, Region] = {}
        self._arrays: Dict[str, ArrayInfo] = {}
        self._scalars: Dict[str, ScalarInfo] = {}
        self._temp_count = 0
        self._scalar_temp_count = 0
        # Scalar statements pending insertion before the current statement
        # (hoisted reductions).
        self._pending: List[IRStatement] = []

    # -- entry point --------------------------------------------------------

    def run(self) -> IRProgram:
        self._bind_configs()
        self._bind_regions()
        self._bind_variables()
        body = self._convert_stmts(self._checked.program.body)
        return IRProgram(
            self._checked.name,
            self._configs,
            self._arrays,
            self._scalars,
            body,
        )

    # -- declarations ---------------------------------------------------------

    def _bind_configs(self) -> None:
        for decl in self._checked.program.decls:
            if not isinstance(decl, ast.ConfigDecl):
                continue
            if decl.name in self._overrides:
                value = self._overrides[decl.name]
            else:
                value = self._eval_const(decl.default)
            if decl.kind == "integer":
                value = int(value)
            else:
                value = float(value)
            self._configs[decl.name] = value
        unknown = set(self._overrides) - set(self._configs)
        if unknown:
            raise NormalizationError(
                "config overrides for undeclared names: %s" % sorted(unknown)
            )

    def _eval_const(self, expr: ast.Expr) -> object:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.VarRef):
            if expr.name in self._configs:
                return self._configs[expr.name]
            raise NormalizationError(
                "config default may only reference earlier configs, not %r"
                % expr.name
            )
        if isinstance(expr, ast.UnOp) and expr.op == "-":
            value = self._eval_const(expr.operand)
            return -value
        if isinstance(expr, ast.BinOp):
            left = self._eval_const(expr.left)
            right = self._eval_const(expr.right)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                return left / right
            if expr.op == "%":
                return left % right
        raise NormalizationError("config default is not a constant: %r" % expr)

    def _bind_regions(self) -> None:
        for decl in self._checked.program.decls:
            if isinstance(decl, ast.RegionDecl):
                self._regions[decl.name] = self._region_from_dims(decl.dims)

    def _region_from_dims(self, dims: List[ast.RangeDim]) -> Region:
        return Region(
            [(self._linearize(dim.lo), self._linearize(dim.hi)) for dim in dims]
        )

    def _linearize(self, expr: ast.Expr) -> LinearExpr:
        """Convert a bound expression to an affine form (configs folded)."""
        if isinstance(expr, ast.IntLit):
            return LinearExpr(expr.value)
        if isinstance(expr, ast.VarRef):
            if expr.name in self._configs:
                return LinearExpr(int(self._configs[expr.name]))
            symbol = self._symtab.lookup(expr.name)
            if symbol.kind == Symbol.SCALAR and symbol.elem_kind == "integer":
                return LinearExpr.variable(expr.name)
            raise NormalizationError(
                "region bound references non-integer %r" % expr.name
            )
        if isinstance(expr, ast.UnOp) and expr.op == "-":
            return -self._linearize(expr.operand)
        if isinstance(expr, ast.BinOp):
            left = self._linearize(expr.left)
            right = self._linearize(expr.right)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
        raise NormalizationError("region bound is not affine: %r" % expr)

    def _bind_variables(self) -> None:
        for symbol in self._symtab.all_symbols():
            if symbol.kind == Symbol.ARRAY:
                region = self._resolve_region_spec(symbol.region)
                self._arrays[symbol.name] = ArrayInfo(
                    symbol.name, region, symbol.elem_kind, is_temp=False
                )
            elif symbol.kind == Symbol.SCALAR:
                self._scalars[symbol.name] = ScalarInfo(symbol.name, symbol.elem_kind)

    def _resolve_region_spec(self, spec: ast.RegionSpec) -> Region:
        if spec.name is not None:
            region = self._regions.get(spec.name)
            if region is None:
                raise NormalizationError("unknown region %r" % spec.name)
            return region
        return self._region_from_dims(spec.dims)

    # -- statements -------------------------------------------------------------

    def _convert_stmts(self, stmts: List[ast.Stmt]) -> List[IRStatement]:
        result: List[IRStatement] = []
        for stmt in stmts:
            result.extend(self._convert_stmt(stmt))
        return result

    def _convert_stmt(self, stmt: ast.Stmt) -> List[IRStatement]:
        if isinstance(stmt, ast.ArrayAssign):
            return self._convert_array_assign(stmt)
        if isinstance(stmt, ast.BoundaryStmt):
            region = self._resolve_region_spec(stmt.region)
            if region.free_variables():
                raise NormalizationError(
                    "boundary statements require a constant region, got %s"
                    % region
                )
            return [BoundaryStatement(region, stmt.kind, stmt.array)]
        if isinstance(stmt, ast.ScalarAssign):
            return self._convert_scalar_assign(stmt)
        if isinstance(stmt, ast.For):
            lo = self._convert_scalar_expr(stmt.lo)
            hi = self._convert_scalar_expr(stmt.hi)
            self._flush_pending_or_fail(stmt, "for-loop bounds")
            body = self._convert_stmts(stmt.body)
            return [LoopStatement(stmt.var, lo, hi, body, downto=stmt.downto)]
        if isinstance(stmt, ast.If):
            cond = self._convert_scalar_expr(stmt.cond)
            pending = self._take_pending()
            then_body = self._convert_stmts(stmt.then_body)
            else_body = self._convert_stmts(stmt.else_body)
            return pending + [IfStatement(cond, then_body, else_body)]
        if isinstance(stmt, ast.While):
            cond = self._convert_scalar_expr(stmt.cond)
            self._flush_pending_or_fail(stmt, "while condition")
            body = self._convert_stmts(stmt.body)
            return [WhileStatement(cond, body)]
        raise NormalizationError("unknown statement %r" % stmt)

    def _flush_pending_or_fail(self, stmt: ast.Stmt, what: str) -> None:
        if self._pending:
            raise NormalizationError(
                "reductions are not allowed in %s (line %s)"
                % (what, stmt.location)
            )

    def _take_pending(self) -> List[IRStatement]:
        pending = self._pending
        self._pending = []
        return pending

    def _convert_array_assign(self, stmt: ast.ArrayAssign) -> List[IRStatement]:
        region = self._resolve_region_spec(stmt.region)
        rhs = self._convert_array_expr(stmt.value, region.rank)
        pending = self._take_pending()

        self_offsets = {
            ref.offset for ref in rhs.array_refs() if ref.name == stmt.target
        }
        if not self_offsets or self._self_temp_elidable(self_offsets, region.rank):
            return pending + [ArrayStatement(region, stmt.target, rhs)]

        # Normal form property (i): split through a compiler temporary.
        temp = self._fresh_temp(stmt.target)
        return pending + [
            ArrayStatement(region, temp, rhs),
            ArrayStatement(region, stmt.target, ir.ArrayRef(temp, zero(region.rank))),
        ]

    def _self_temp_elidable(self, self_offsets, rank: int) -> bool:
        """May a self-updating statement skip its compiler temporary?"""
        if self._self_temp_policy == "always":
            return False
        nonzero = [off for off in self_offsets if any(off)]
        if not nonzero:
            return True  # element-wise self-update: safe in any loop order
        if self._self_temp_policy == "zero_offset":
            return False
        from repro.fusion.loopstruct import find_loop_structure

        return find_loop_structure(nonzero, rank) is not None

    def _fresh_temp(self, for_target: str) -> str:
        self._temp_count += 1
        name = "_T%d" % self._temp_count
        target_info = self._arrays[for_target]
        self._arrays[name] = ArrayInfo(
            name, target_info.region, target_info.elem_kind, is_temp=True
        )
        return name

    def _fresh_scalar_temp(self, kind: str) -> str:
        self._scalar_temp_count += 1
        name = "_s%d" % self._scalar_temp_count
        self._scalars[name] = ScalarInfo(name, kind)
        return name

    def _convert_scalar_assign(self, stmt: ast.ScalarAssign) -> List[IRStatement]:
        if isinstance(stmt.value, ast.Reduce):
            # A bare reduction becomes a block-resident ReductionStatement so
            # that statement fusion can absorb it (and contract its inputs).
            reduce_ir = self._convert_reduce(stmt.value)
            pending = self._take_pending()
            return pending + [
                ReductionStatement(
                    reduce_ir.region, stmt.target, reduce_ir.op, reduce_ir.operand
                )
            ]
        rhs = self._convert_scalar_expr(stmt.value)
        pending = self._take_pending()
        return pending + [ScalarStatement(stmt.target, rhs)]

    # -- expressions --------------------------------------------------------------

    def _convert_array_expr(self, expr: ast.Expr, rank: int) -> ir.IRExpr:
        """Convert an expression in array (element-wise) context.

        Reductions encountered here are scalar sub-expressions; they are
        hoisted into ``self._pending`` and replaced with a scalar read.
        """
        if isinstance(expr, ast.IntLit):
            return ir.Const(expr.value)
        if isinstance(expr, ast.FloatLit):
            return ir.Const(expr.value)
        if isinstance(expr, ast.BoolLit):
            return ir.Const(expr.value)
        if isinstance(expr, ast.VarRef):
            index_dim = index_array_dimension(expr.name)
            if index_dim is not None and expr.name not in self._symtab:
                return ir.IndexRef(index_dim)
            symbol = self._symtab.lookup(expr.name)
            if symbol.kind == Symbol.ARRAY:
                info = self._arrays[expr.name]
                return ir.ArrayRef(expr.name, zero(info.rank))
            if symbol.kind == Symbol.CONFIG:
                return ir.Const(self._configs[expr.name])
            return ir.ScalarRef(expr.name)
        if isinstance(expr, ast.OffsetRef):
            return ir.ArrayRef(expr.name, tuple(expr.direction))
        if isinstance(expr, ast.BinOp):
            return ir.BinOp(
                expr.op,
                self._convert_array_expr(expr.left, rank),
                self._convert_array_expr(expr.right, rank),
            )
        if isinstance(expr, ast.UnOp):
            return ir.UnOp(expr.op, self._convert_array_expr(expr.operand, rank))
        if isinstance(expr, ast.Call):
            return ir.Call(
                expr.name,
                [self._convert_array_expr(arg, rank) for arg in expr.args],
            )
        if isinstance(expr, ast.Reduce):
            reduce_ir = self._convert_reduce(expr)
            temp = self._fresh_scalar_temp("float")
            self._pending.append(
                ReductionStatement(
                    reduce_ir.region, temp, reduce_ir.op, reduce_ir.operand
                )
            )
            return ir.ScalarRef(temp)
        raise NormalizationError("unsupported expression %r" % expr)

    def _convert_scalar_expr(self, expr: ast.Expr) -> ir.IRExpr:
        if isinstance(expr, ast.IntLit):
            return ir.Const(expr.value)
        if isinstance(expr, ast.FloatLit):
            return ir.Const(expr.value)
        if isinstance(expr, ast.BoolLit):
            return ir.Const(expr.value)
        if isinstance(expr, ast.VarRef):
            symbol = self._symtab.lookup(expr.name)
            if symbol.kind == Symbol.CONFIG:
                return ir.Const(self._configs[expr.name])
            if symbol.kind == Symbol.ARRAY:
                raise NormalizationError(
                    "array %r in scalar context (missed by semantic analysis)"
                    % expr.name
                )
            return ir.ScalarRef(expr.name)
        if isinstance(expr, ast.BinOp):
            return ir.BinOp(
                expr.op,
                self._convert_scalar_expr(expr.left),
                self._convert_scalar_expr(expr.right),
            )
        if isinstance(expr, ast.UnOp):
            return ir.UnOp(expr.op, self._convert_scalar_expr(expr.operand))
        if isinstance(expr, ast.Call):
            return ir.Call(
                expr.name, [self._convert_scalar_expr(arg) for arg in expr.args]
            )
        if isinstance(expr, ast.Reduce):
            # Hoist: reductions become block-resident statements so fusion
            # can absorb them; the scalar expression reads the result.
            reduce_ir = self._convert_reduce(expr)
            temp = self._fresh_scalar_temp("float")
            self._pending.append(
                ReductionStatement(
                    reduce_ir.region, temp, reduce_ir.op, reduce_ir.operand
                )
            )
            return ir.ScalarRef(temp)
        raise NormalizationError("unsupported scalar expression %r" % expr)

    def _convert_reduce(self, expr: ast.Reduce) -> ir.Reduce:
        if expr.region is not None:
            region = self._resolve_region_spec(expr.region)
        else:
            region = self._infer_reduce_region(expr.operand)
        operand = self._convert_array_expr(expr.operand, region.rank)
        return ir.Reduce(expr.op, region, operand)

    def _infer_reduce_region(self, operand: ast.Expr) -> Region:
        regions: List[Region] = []

        def visit(node: ast.Expr) -> None:
            if isinstance(node, (ast.VarRef, ast.OffsetRef)):
                symbol = self._symtab.maybe(node.name)
                if symbol is not None and symbol.kind == Symbol.ARRAY:
                    regions.append(self._arrays[node.name].region)
            for attr in ("left", "right", "operand"):
                child = getattr(node, attr, None)
                if isinstance(child, ast.Expr):
                    visit(child)
            for child in getattr(node, "args", []) or []:
                visit(child)

        visit(operand)
        if not regions:
            raise NormalizationError(
                "cannot infer reduction region: no arrays in operand"
            )
        first = regions[0]
        for region in regions[1:]:
            if region != first:
                raise NormalizationError(
                    "reduction over arrays with different regions needs an "
                    "explicit region"
                )
        return first


def normalize(
    checked: CheckedProgram,
    config_overrides: Optional[Mapping[str, object]] = None,
    self_temp_policy: str = "always",
) -> IRProgram:
    """Lower a checked program into normal-form IR."""
    return Normalizer(checked, config_overrides, self_temp_policy).run()


def normalize_source(
    source: str,
    config_overrides: Optional[Mapping[str, object]] = None,
    self_temp_policy: str = "always",
) -> IRProgram:
    """Parse, check and normalize source text in one step."""
    from repro.lang.sema import check_source

    return normalize(check_source(source), config_overrides, self_temp_policy)
