"""IR statements: normalized array statements plus sequential control flow.

A :class:`ArrayStatement` is exactly the paper's normal form
``[R] X := f(A1@d1, ..., As@ds)`` — the target is written at zero offset over
region ``R``, the right-hand side is element-wise, and every array reference
carries a constant offset.  Control-flow statements delimit the basic blocks
whose runs of array statements form ASDGs.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.ir.expr import ArrayRef, IRExpr
from repro.ir.region import Region

_statement_ids = itertools.count(1)


class IRStatement:
    """Base class for IR statements."""

    __slots__ = ()


class ArrayStatement(IRStatement):
    """A normalized array statement ``[region] target := rhs``."""

    __slots__ = ("uid", "region", "target", "rhs")

    #: Does this statement write its target array?  (Reductions do not.)
    writes_array = True

    def __init__(self, region: Region, target: str, rhs: IRExpr) -> None:
        self.uid = next(_statement_ids)
        self.region = region
        self.target = target
        self.rhs = rhs

    @property
    def rank(self) -> int:
        return self.region.rank

    def reads(self) -> List[ArrayRef]:
        """Array references read by this statement."""
        return self.rhs.array_refs()

    def referenced_arrays(self) -> List[str]:
        """All arrays referenced (read or written), target first."""
        names = [self.target] if self.writes_array else []
        for ref in self.reads():
            if ref.name not in names:
                names.append(ref.name)
        return names

    def scalar_writes(self) -> List[str]:
        """Scalar variables written by this statement (reductions only)."""
        return []

    def __repr__(self) -> str:
        return "ArrayStatement(#%d %s %s := %s)" % (
            self.uid,
            self.region,
            self.target,
            self.rhs,
        )

    def __str__(self) -> str:
        return "%s %s := %s;" % (self.region, self.target, self.rhs)

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other


class ReductionStatement(ArrayStatement):
    """A full reduction fused into its basic block: ``s := op<< [R] rhs``.

    Reductions participate in the ASDG like array statements — their reads
    induce flow dependences from producers, which lets contraction eliminate
    arrays whose only consumers are reductions (the mechanism behind EP's
    complete array elimination in Figure 7).  They write a *scalar*, so they
    never make their "target" an array dependence, and a scalar dependence
    (:class:`~repro.deps.asdg.DepType` SCALAR) keeps any same-block reader
    of the scalar out of their cluster.
    """

    __slots__ = ("scalar_target", "op")

    writes_array = False

    def __init__(
        self, region: Region, scalar_target: str, op: str, rhs: IRExpr
    ) -> None:
        super().__init__(region, "", rhs)
        self.scalar_target = scalar_target
        self.op = op

    def scalar_writes(self) -> List[str]:
        return [self.scalar_target]

    def __repr__(self) -> str:
        return "ReductionStatement(#%d %s %s := %s<< %s)" % (
            self.uid,
            self.region,
            self.scalar_target,
            self.op,
            self.rhs,
        )

    def __str__(self) -> str:
        return "%s %s := %s<< %s;" % (
            self.region,
            self.scalar_target,
            self.op,
            self.rhs,
        )


class BoundaryStatement(IRStatement):
    """``[R] wrap A;`` / ``[R] reflect A;`` — fill A's halo outside R.

    Like the compiler's communication primitives, boundary statements are
    not normalized statements and never participate in fusion (they read
    and write the same array); they delimit basic blocks.
    """

    __slots__ = ("region", "kind", "array")

    WRAP = "wrap"
    REFLECT = "reflect"

    def __init__(self, region: Region, kind: str, array: str) -> None:
        if kind not in (self.WRAP, self.REFLECT):
            raise ValueError("unknown boundary kind %r" % kind)
        self.region = region
        self.kind = kind
        self.array = array

    def __repr__(self) -> str:
        return "BoundaryStatement(%s %s %s)" % (self.region, self.kind, self.array)

    def __str__(self) -> str:
        return "%s %s %s;" % (self.region, self.kind, self.array)


class ScalarStatement(IRStatement):
    """A scalar assignment; the RHS may contain reductions."""

    __slots__ = ("target", "rhs")

    def __init__(self, target: str, rhs: IRExpr) -> None:
        self.target = target
        self.rhs = rhs

    def __repr__(self) -> str:
        return "ScalarStatement(%s := %s)" % (self.target, self.rhs)

    def __str__(self) -> str:
        return "%s := %s;" % (self.target, self.rhs)


class LoopStatement(IRStatement):
    """A sequential counted loop over scalar state."""

    __slots__ = ("var", "lo", "hi", "downto", "body")

    def __init__(
        self,
        var: str,
        lo: IRExpr,
        hi: IRExpr,
        body: List[IRStatement],
        downto: bool = False,
    ) -> None:
        self.var = var
        self.lo = lo
        self.hi = hi
        self.downto = downto
        self.body = body

    def __repr__(self) -> str:
        return "LoopStatement(%s := %s %s %s, %d stmts)" % (
            self.var,
            self.lo,
            "downto" if self.downto else "to",
            self.hi,
            len(self.body),
        )


class IfStatement(IRStatement):
    """A conditional over scalar state."""

    __slots__ = ("cond", "then_body", "else_body")

    def __init__(
        self,
        cond: IRExpr,
        then_body: List[IRStatement],
        else_body: Optional[List[IRStatement]] = None,
    ) -> None:
        self.cond = cond
        self.then_body = then_body
        self.else_body = else_body or []

    def __repr__(self) -> str:
        return "IfStatement(%s, %d then, %d else)" % (
            self.cond,
            len(self.then_body),
            len(self.else_body),
        )


class WhileStatement(IRStatement):
    """A while loop over scalar state."""

    __slots__ = ("cond", "body")

    def __init__(self, cond: IRExpr, body: List[IRStatement]) -> None:
        self.cond = cond
        self.body = body

    def __repr__(self) -> str:
        return "WhileStatement(%s, %d stmts)" % (self.cond, len(self.body))


def basic_blocks(body: Sequence[IRStatement]) -> Iterator[Tuple[int, List[ArrayStatement]]]:
    """Yield ``(start_index, run)`` for each maximal run of array statements.

    Only runs within ``body`` itself are yielded; callers recurse into
    control-flow bodies separately (see :func:`walk_blocks`).
    """
    run: List[ArrayStatement] = []
    start = 0
    for index, stmt in enumerate(body):
        if isinstance(stmt, ArrayStatement):
            if not run:
                start = index
            run.append(stmt)
        else:
            if run:
                yield start, run
                run = []
    if run:
        yield start, run


def walk_blocks(body: Sequence[IRStatement]) -> Iterator[List[ArrayStatement]]:
    """Yield every basic block of array statements, recursing into control flow."""
    for _, run in basic_blocks(body):
        yield run
    for stmt in body:
        if isinstance(stmt, LoopStatement):
            for block in walk_blocks(stmt.body):
                yield block
        elif isinstance(stmt, IfStatement):
            for block in walk_blocks(stmt.then_body):
                yield block
            for block in walk_blocks(stmt.else_body):
                yield block
        elif isinstance(stmt, WhileStatement):
            for block in walk_blocks(stmt.body):
                yield block


def walk_statements(body: Sequence[IRStatement]) -> Iterator[IRStatement]:
    """Pre-order traversal of all statements, recursing into control flow."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, LoopStatement):
            for inner in walk_statements(stmt.body):
                yield inner
        elif isinstance(stmt, IfStatement):
            for inner in walk_statements(stmt.then_body):
                yield inner
            for inner in walk_statements(stmt.else_body):
                yield inner
        elif isinstance(stmt, WhileStatement):
            for inner in walk_statements(stmt.body):
                yield inner
