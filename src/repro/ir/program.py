"""The IR-level program: declarations plus a body of IR statements."""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.ir.region import Region
from repro.ir.statement import (
    ArrayStatement,
    IRStatement,
    ScalarStatement,
    walk_blocks,
    walk_statements,
)
from repro.util.vectors import IntVector, max_abs_per_dim, zero


class ArrayInfo:
    """Metadata for a declared (or compiler-introduced) array."""

    __slots__ = ("name", "region", "elem_kind", "is_temp", "is_output")

    def __init__(
        self,
        name: str,
        region: Region,
        elem_kind: str,
        is_temp: bool = False,
        is_output: bool = False,
    ) -> None:
        self.name = name
        self.region = region
        self.elem_kind = elem_kind
        self.is_temp = is_temp
        #: The array's final contents escape to a caller (the lazy
        #: ``repro.array`` frontend returns them), so contraction must
        #: never eliminate its storage even if no statement reads it.
        self.is_output = is_output

    @property
    def rank(self) -> int:
        return self.region.rank

    def __repr__(self) -> str:
        tag = " (compiler temp)" if self.is_temp else ""
        return "ArrayInfo(%s : %s %s%s)" % (
            self.name,
            self.region,
            self.elem_kind,
            tag,
        )


class ScalarInfo:
    """Metadata for a declared scalar variable."""

    __slots__ = ("name", "kind")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind

    def __repr__(self) -> str:
        return "ScalarInfo(%s : %s)" % (self.name, self.kind)


class IRProgram:
    """A normalized program: every array statement is in normal form."""

    def __init__(
        self,
        name: str,
        configs: Mapping[str, object],
        arrays: Dict[str, ArrayInfo],
        scalars: Dict[str, ScalarInfo],
        body: List[IRStatement],
    ) -> None:
        self.name = name
        self.configs = dict(configs)
        self.arrays = arrays
        self.scalars = scalars
        self.body = body

    # -- structure queries -------------------------------------------------

    def blocks(self) -> Iterator[List[ArrayStatement]]:
        """Every basic block of array statements in the program."""
        return walk_blocks(self.body)

    def array_statements(self) -> List[ArrayStatement]:
        return [
            stmt
            for stmt in walk_statements(self.body)
            if isinstance(stmt, ArrayStatement)
        ]

    def config_env(self) -> Dict[str, int]:
        """Integer-valued configuration bindings (for region evaluation)."""
        return {
            name: int(value)
            for name, value in self.configs.items()
            if isinstance(value, int) or float(value).is_integer()
        }

    # -- array census --------------------------------------------------------

    def user_arrays(self) -> List[ArrayInfo]:
        return [info for info in self.arrays.values() if not info.is_temp]

    def compiler_arrays(self) -> List[ArrayInfo]:
        return [info for info in self.arrays.values() if info.is_temp]

    def halo(self, array: str) -> IntVector:
        """Component-wise maximum |offset| used to reference ``array``.

        Arrays are allocated over their declared region expanded by this halo
        so that constant-offset references never index out of storage.
        """
        info = self.arrays[array]
        offsets = []
        for stmt in self.array_statements():
            for ref in stmt.reads():
                if ref.name == array:
                    offsets.append(ref.offset)
        if not offsets:
            return zero(info.rank)
        return max_abs_per_dim(offsets)

    def allocation_region(self, array: str) -> Region:
        """The storage region of ``array``: declared region plus halo."""
        info = self.arrays[array]
        return info.region.expanded(self.halo(array))

    # -- liveness -----------------------------------------------------------

    def reads_of(self, array: str) -> List[ArrayStatement]:
        """Array statements that read ``array``."""
        result = []
        for stmt in self.array_statements():
            if any(ref.name == array for ref in stmt.reads()):
                result.append(stmt)
        return result

    def scalar_reads_of(self, array: str) -> List[ScalarStatement]:
        """Scalar statements whose reductions read ``array``."""
        result = []
        for stmt in walk_statements(self.body):
            if isinstance(stmt, ScalarStatement):
                if any(ref.name == array for ref in stmt.rhs.array_refs()):
                    result.append(stmt)
        return result

    def boundary_statements(self):
        """All wrap/reflect statements in the program."""
        from repro.ir.statement import BoundaryStatement

        return [
            stmt
            for stmt in walk_statements(self.body)
            if isinstance(stmt, BoundaryStatement)
        ]

    def refs_confined_to_block(self, array: str, block: List[ArrayStatement]) -> bool:
        """True iff every reference to ``array`` in the program is in ``block``.

        This is the whole-program side of contractibility: an array whose
        value escapes its basic block (read by a later block, a reduction, or
        a different iteration structure) must keep its storage.  Declared
        *output* arrays escape by definition — their final contents are
        returned to a caller — so they are never confined.
        """
        info = self.arrays.get(array)
        if info is not None and info.is_output:
            return False
        block_ids = {stmt.uid for stmt in block}
        for stmt in self.array_statements():
            touches = stmt.target == array or any(
                ref.name == array for ref in stmt.reads()
            )
            if touches and stmt.uid not in block_ids:
                return False
        if self.scalar_reads_of(array):
            return False
        if any(stmt.array == array for stmt in self.boundary_statements()):
            return False
        return True

    def first_ref_is_definition(self, array: str, block: List[ArrayStatement]) -> bool:
        """True iff the first statement in ``block`` touching ``array`` writes it.

        Guards against contraction of arrays carried around an enclosing
        sequential loop: if the block (re-executed each iteration) reads the
        array before defining it, the value flows across iterations and the
        array must stay in memory.
        """
        for stmt in block:
            if stmt.target == array:
                return True
            if any(ref.name == array for ref in stmt.reads()):
                return False
        return False

    # -- rendering ------------------------------------------------------------

    def render(self) -> str:
        """Pretty-print the program (normal-form statements and control flow)."""
        lines: List[str] = ["program %s (normalized)" % self.name]
        for name, value in sorted(self.configs.items()):
            lines.append("  config %s = %r" % (name, value))
        for info in self.arrays.values():
            lines.append("  %r" % info)
        lines.extend(self._render_body(self.body, "  "))
        return "\n".join(lines)

    def _render_body(self, body: List[IRStatement], indent: str) -> List[str]:
        from repro.ir.statement import (
            BoundaryStatement,
            IfStatement,
            LoopStatement,
            WhileStatement,
        )

        lines: List[str] = []
        for stmt in body:
            if isinstance(stmt, (ArrayStatement, ScalarStatement, BoundaryStatement)):
                lines.append(indent + str(stmt))
            elif isinstance(stmt, LoopStatement):
                lines.append(
                    indent
                    + "for %s := %s %s %s do"
                    % (stmt.var, stmt.lo, "downto" if stmt.downto else "to", stmt.hi)
                )
                lines.extend(self._render_body(stmt.body, indent + "  "))
                lines.append(indent + "end")
            elif isinstance(stmt, IfStatement):
                lines.append(indent + "if %s then" % (stmt.cond,))
                lines.extend(self._render_body(stmt.then_body, indent + "  "))
                if stmt.else_body:
                    lines.append(indent + "else")
                    lines.extend(self._render_body(stmt.else_body, indent + "  "))
                lines.append(indent + "end")
            elif isinstance(stmt, WhileStatement):
                lines.append(indent + "while %s do" % (stmt.cond,))
                lines.extend(self._render_body(stmt.body, indent + "  "))
                lines.append(indent + "end")
        return lines
