"""Normal-form IR: regions, element-wise statements, normalization."""

from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Const,
    IndexRef,
    IRExpr,
    Reduce,
    ScalarRef,
    UnOp,
    collect_ref_tuples,
    substitute_refs,
)
from repro.ir.linexpr import LinearExpr
from repro.ir.normalize import Normalizer, normalize, normalize_source
from repro.ir.program import ArrayInfo, IRProgram, ScalarInfo
from repro.ir.region import Region
from repro.ir.simplify import simplify_expr, simplify_program
from repro.ir.statement import (
    ArrayStatement,
    BoundaryStatement,
    IfStatement,
    IRStatement,
    LoopStatement,
    ReductionStatement,
    ScalarStatement,
    WhileStatement,
    basic_blocks,
    walk_blocks,
    walk_statements,
)

__all__ = [
    "ArrayInfo",
    "ArrayRef",
    "ArrayStatement",
    "BoundaryStatement",
    "BinOp",
    "Call",
    "Const",
    "IRExpr",
    "IRProgram",
    "IndexRef",
    "IRStatement",
    "IfStatement",
    "LinearExpr",
    "LoopStatement",
    "Normalizer",
    "Reduce",
    "ReductionStatement",
    "Region",
    "ScalarInfo",
    "ScalarRef",
    "ScalarStatement",
    "UnOp",
    "WhileStatement",
    "basic_blocks",
    "collect_ref_tuples",
    "normalize",
    "normalize_source",
    "simplify_expr",
    "simplify_program",
    "substitute_refs",
    "walk_blocks",
    "walk_statements",
]
