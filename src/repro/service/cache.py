"""The two-tier compiled-artifact cache.

Tier 1 is an in-memory LRU (bounded entry count) holding live artifact
dicts; tier 2 is a content-addressed on-disk store so warmth survives the
process — the analogue of Bohrium's fuse cache, amortizing array-level
analysis across runs.

Disk layout: ``<root>/<digest[:2]>/<digest>.pkl``, each file a pickled
envelope ``{"schema", "code_version", "digest", "payload"}``.  Loads
verify all three stamps; any mismatch or unpicklable file is treated as a
miss and the file is deleted (a corrupted cache can only cost a
recompile, never a wrong answer).  Writes are atomic (temp file +
``os.replace``) so concurrent services never observe torn artifacts.

Native artifacts — shared objects the ``c`` backend compiled — are a
second kind in the same store: ``<root>/<digest[:2]>/<digest>.so`` plus a
JSON stamp sidecar ``<digest>.so.json`` recording schema, code version,
digest and the SHA-256 of the object bytes.  The same self-invalidation
discipline applies: any stamp or checksum mismatch deletes both files and
reads as a miss, so a stale or torn ``.so`` costs one recompile, never a
wrong (or crashing) kernel.

The root defaults to ``.repro-cache/`` and is overridable with the
``REPRO_CACHE_DIR`` environment variable; the disk tier is size-bounded
(``REPRO_CACHE_MAX_BYTES``, default 256 MiB) with oldest-first eviction.

``<root>/locks/`` holds per-digest ``flock`` files for
:meth:`ArtifactCache.build_lock`, the cross-process single-flight
protocol: concurrent processes missing on one digest elect one builder,
the rest block and then hit the artifact it persisted.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.service import fingerprint
from repro.service.metrics import Metrics

#: Envelope layout version — independent of the compiler's CODE_VERSION.
ARTIFACT_SCHEMA = 1

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"
DEFAULT_CACHE_DIR = ".repro-cache"
DEFAULT_MAX_BYTES = 256 * 1024 * 1024
DEFAULT_MEMORY_ENTRIES = 128


def default_cache_dir() -> str:
    return os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR


def _default_max_bytes() -> int:
    raw = os.environ.get(ENV_CACHE_MAX_BYTES)
    if raw:
        try:
            return max(int(raw), 0)
        except ValueError:
            pass
    return DEFAULT_MAX_BYTES


class ArtifactCache:
    """In-memory LRU over a persistent content-addressed store."""

    def __init__(
        self,
        root: Optional[str] = None,
        persistent: bool = True,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        max_bytes: Optional[int] = None,
        metrics: Optional[Metrics] = None,
        code_version: Optional[str] = None,
    ) -> None:
        self.root = os.fspath(root) if root is not None else default_cache_dir()
        self.persistent = persistent
        self.memory_entries = max(int(memory_entries), 1)
        self.max_bytes = max_bytes if max_bytes is not None else _default_max_bytes()
        self.metrics = metrics or Metrics()
        #: Resolved at access time when None so tests can monkeypatch
        #: ``fingerprint.CODE_VERSION`` and see stale artifacts rejected.
        self._code_version = code_version
        self._memory: "OrderedDict[str, dict]" = OrderedDict()
        #: Guards the memory tier: OrderedDict reordering under
        #: concurrent ``get``/``put`` (``Service.submit_many`` worker
        #: threads) is not atomic on its own.
        self._memory_lock = threading.Lock()

    @property
    def code_version(self) -> str:
        return self._code_version or fingerprint.CODE_VERSION

    # -- lookup ------------------------------------------------------------

    def get(self, digest: str) -> Optional[dict]:
        """The artifact payload for ``digest``, or None on miss."""
        with self._memory_lock:
            artifact = self._memory.get(digest)
            if artifact is not None:
                self._memory.move_to_end(digest)
        if artifact is not None:
            self.metrics.incr("cache.memory_hits")
            return artifact
        artifact = self._disk_get(digest)
        if artifact is not None:
            self.metrics.incr("cache.disk_hits")
            self._memory_put(digest, artifact)
        return artifact

    def put(self, digest: str, payload: dict) -> None:
        self._memory_put(digest, payload)
        if self.persistent:
            self._disk_put(digest, payload)

    # -- cross-process single-flight ---------------------------------------

    @contextmanager
    def build_lock(self, digest: str):
        """An exclusive cross-process lock for building one digest.

        Threads in one service already single-flight through the
        in-process future map; this extends the guarantee across
        *processes* sharing a cache directory (the daemon's worker pool,
        parallel CI jobs): the lock is an ``fcntl.flock`` on
        ``<root>/locks/<digest>.lock``, so exactly one process runs the
        pipeline while the rest block, then re-probe the cache and hit
        the artifact the owner just persisted.  The holder must re-check
        ``get(digest)`` under the lock before building.

        Contended acquisitions are counted as ``cache.lock_waits``.
        Degrades to a no-op when the cache is memory-only or the
        platform has no ``fcntl`` — single-process semantics are
        unchanged either way.
        """
        if not self.persistent:
            yield
            return
        try:
            import fcntl
        except ImportError:
            yield
            return
        lock_dir = os.path.join(self.root, "locks")
        lock_path = os.path.join(lock_dir, digest + ".lock")
        try:
            os.makedirs(lock_dir, exist_ok=True)
            fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        except OSError:
            # Read-only cache directory: same degradation as _disk_put.
            yield
            return
        try:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                self.metrics.incr("cache.lock_waits")
                fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def invalidate(self, digest: str) -> None:
        with self._memory_lock:
            self._memory.pop(digest, None)
        path = self._path(digest)
        if os.path.exists(path):
            os.remove(path)

    def clear(self) -> None:
        with self._memory_lock:
            self._memory.clear()
        for path, _size, _mtime in self.disk_entries() + self.native_entries():
            for victim in (
                (path, path + ".json") if path.endswith(".so") else (path,)
            ):
                try:
                    os.remove(victim)
                except OSError:
                    pass

    # -- memory tier -------------------------------------------------------

    def _memory_put(self, digest: str, payload: dict) -> None:
        evictions = 0
        with self._memory_lock:
            self._memory[digest] = payload
            self._memory.move_to_end(digest)
            while len(self._memory) > self.memory_entries:
                self._memory.popitem(last=False)
                evictions += 1
        if evictions:
            self.metrics.incr("cache.memory_evictions", evictions)

    # -- disk tier ---------------------------------------------------------

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], digest + ".pkl")

    def _disk_get(self, digest: str) -> Optional[dict]:
        if not self.persistent:
            return None
        path = self._path(digest)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
            if not isinstance(envelope, dict):
                raise ValueError("artifact envelope is not a dict")
            if (
                envelope.get("schema") != ARTIFACT_SCHEMA
                or envelope.get("code_version") != self.code_version
                or envelope.get("digest") != digest
            ):
                raise ValueError("artifact stamp mismatch")
            payload = envelope["payload"]
            if not isinstance(payload, dict):
                raise ValueError("artifact payload is not a dict")
            # Refresh mtime so size eviction stays LRU-ish across processes.
            os.utime(path, None)
            return payload
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupted, truncated, or stale-versioned file: drop it and
            # recompile rather than risk replaying a wrong artifact.
            self.metrics.incr("cache.invalid_artifacts")
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def _disk_put(self, digest: str, payload: dict) -> None:
        path = self._path(digest)
        envelope = {
            "schema": ARTIFACT_SCHEMA,
            "code_version": self.code_version,
            "digest": digest,
            "payload": payload,
        }
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full cache directory degrades to memory-only.
            self.metrics.incr("cache.write_errors")
            return
        self._evict_disk()

    # -- native (.so) artifacts --------------------------------------------

    def _native_path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], digest + ".so")

    def get_native(self, digest: str) -> Optional[str]:
        """Path to a verified cached shared object, or None on miss.

        Returns a filesystem path (not bytes): the caller hands it
        straight to ``dlopen``, so the file must stay on disk.  The JSON
        stamp sidecar is verified on every load — schema, code version,
        digest and the SHA-256 of the object bytes — and any mismatch
        deletes both files and reads as a miss.
        """
        if not self.persistent:
            return None
        path = self._native_path(digest)
        stamp_path = path + ".json"
        try:
            with open(stamp_path, "r") as handle:
                stamp = json.load(handle)
            with open(path, "rb") as handle:
                so_bytes = handle.read()
            if (
                not isinstance(stamp, dict)
                or stamp.get("schema") != ARTIFACT_SCHEMA
                or stamp.get("code_version") != self.code_version
                or stamp.get("digest") != digest
                or stamp.get("sha256") != hashlib.sha256(so_bytes).hexdigest()
            ):
                raise ValueError("native artifact stamp mismatch")
            os.utime(path, None)
            self.metrics.incr("cache.native_hits")
            return path
        except FileNotFoundError:
            return None
        except Exception:
            self.metrics.incr("cache.invalid_artifacts")
            for victim in (path, stamp_path):
                try:
                    os.remove(victim)
                except OSError:
                    pass
            return None

    def put_native(self, digest: str, so_bytes: bytes) -> Optional[str]:
        """Store compiled shared-object bytes; returns the stored path.

        Non-persistent caches return None — the native runner's
        per-process scratch directory covers that mode.  Both the object
        and its stamp are written atomically, object first, so a crash
        between the two leaves an unstamped ``.so`` that reads as a miss.
        """
        if not self.persistent:
            return None
        path = self._native_path(digest)
        stamp = {
            "schema": ARTIFACT_SCHEMA,
            "code_version": self.code_version,
            "digest": digest,
            "sha256": hashlib.sha256(so_bytes).hexdigest(),
        }
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            for target, data, mode in (
                (path, so_bytes, "wb"),
                (path + ".json", json.dumps(stamp, sort_keys=True), "w"),
            ):
                fd, tmp = tempfile.mkstemp(
                    dir=os.path.dirname(path), suffix=".tmp"
                )
                try:
                    with os.fdopen(fd, mode) as handle:
                        handle.write(data)
                    os.replace(tmp, target)
                except BaseException:
                    try:
                        os.remove(tmp)
                    except OSError:
                        pass
                    raise
        except OSError:
            self.metrics.incr("cache.write_errors")
            return None
        self._evict_disk()
        return path

    def native_entries(self) -> List[Tuple[str, int, float]]:
        """All stored shared objects as ``(path, bytes, mtime)``."""
        entries: List[Tuple[str, int, float]] = []
        if not os.path.isdir(self.root):
            return entries
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".so"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                entries.append((path, stat.st_size, stat.st_mtime))
        return entries

    def disk_entries(self) -> List[Tuple[str, int, float]]:
        """All stored artifact files as ``(path, bytes, mtime)``."""
        entries: List[Tuple[str, int, float]] = []
        if not os.path.isdir(self.root):
            return entries
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".pkl"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                entries.append((path, stat.st_size, stat.st_mtime))
        return entries

    def _evict_disk(self) -> None:
        if self.max_bytes <= 0:
            return
        entries = self.disk_entries() + self.native_entries()
        total = sum(size for _path, size, _mtime in entries)
        if total <= self.max_bytes:
            return
        for path, size, _mtime in sorted(entries, key=lambda e: e[2]):
            try:
                os.remove(path)
            except OSError:
                continue
            if path.endswith(".so"):
                try:
                    os.remove(path + ".json")
                except OSError:
                    pass
            self.metrics.incr("cache.disk_evictions")
            total -= size
            if total <= self.max_bytes:
                break

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        entries = self.disk_entries() if self.persistent else []
        native = self.native_entries() if self.persistent else []
        return {
            "root": self.root,
            "persistent": self.persistent,
            "code_version": self.code_version,
            "memory_entries": len(self._memory),  # len() is atomic enough
            "memory_limit": self.memory_entries,
            "disk_entries": len(entries),
            "disk_bytes": sum(size for _p, size, _m in entries),
            "native_entries": len(native),
            "native_bytes": sum(size for _p, size, _m in native),
            "disk_limit_bytes": self.max_bytes,
        }
