"""The compile-once serving layer.

Treats the compiler as a long-lived service: programs are compiled once,
content-addressed by a stable digest of ``(source/IR, level, config,
backend, code version)``, stored in a two-tier artifact cache (in-memory
LRU over a persistent on-disk store), and executed many times with
varying config bindings and initial arrays — with every pipeline pass,
cache probe and backend execution metered.

    from repro.service import Service

    service = Service(level="c2+f3", backend="codegen_np")
    compiled = service.compile(source)            # miss: full pipeline
    compiled = service.compile(source)            # hit: artifact replay
    results = service.submit_many(
        source,
        [{"config": {"n": size}} for size in (64, 128, 256)],
        workers=4,
    )
    print(service.stats())
"""

from repro.service.cache import (
    ARTIFACT_SCHEMA,
    ArtifactCache,
    DEFAULT_CACHE_DIR,
    ENV_CACHE_DIR,
    ENV_CACHE_MAX_BYTES,
    default_cache_dir,
)
from repro.service.compiled import CompiledProgram, split_request
from repro.service.fingerprint import (
    CODE_VERSION,
    canonical_program,
    ir_digest,
    source_digest,
    tune_digest,
)
from repro.service.metrics import Metrics, TimerStat
from repro.service.service import COMPILE_PASSES, Service

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactCache",
    "CODE_VERSION",
    "COMPILE_PASSES",
    "CompiledProgram",
    "DEFAULT_CACHE_DIR",
    "ENV_CACHE_DIR",
    "ENV_CACHE_MAX_BYTES",
    "Metrics",
    "Service",
    "TimerStat",
    "canonical_program",
    "default_cache_dir",
    "ir_digest",
    "source_digest",
    "split_request",
    "tune_digest",
]
