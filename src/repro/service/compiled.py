"""A compiled program: one artifact, many executions.

``CompiledProgram`` wraps a cached artifact payload (the scalarized
program plus the rendered backend code) and executes it repeatedly with
per-request initial array contents, without ever re-running the
array-level pipeline.  The rendered code is compiled to a Python code
object once per backend and reused across requests.

Configuration bindings are *compile-time* in this compiler —
normalization folds config values into region bounds and expressions —
so a request carrying ``{"config": ...}`` is routed by
:class:`repro.service.service.Service` to the artifact compiled for that
binding (one cache entry per binding, hit on every repeat), not rebound
here.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.exec import ExecutionResult, get_backend
from repro.obs.tracer import NOOP_SPAN
from repro.scalarize.loopnest import ScalarProgram
from repro.service.metrics import Metrics
from repro.util.errors import ReproError

#: A request: ``None`` or a mapping with optional ``config`` (routed by
#: the Service to a per-binding artifact) and ``arrays`` (initial array
#: contents, allocation-region layout) keys.
Request = Optional[Mapping[str, object]]

_RENDERERS = {
    "codegen_py": ("repro.scalarize.codegen_py", "render_python", "<repro-serve>"),
    "codegen_np": ("repro.scalarize.codegen_np", "render_numpy", "<repro-serve-np>"),
    "np-par": ("repro.parallel.engine", "render_numpy_par", "<repro-serve-np-par>"),
}


def split_request(request: Request) -> Tuple[Dict[str, object], Optional[Mapping]]:
    """Split a request into (config bindings, initial arrays)."""
    if request is None:
        return {}, None
    if not isinstance(request, Mapping):
        raise ReproError(
            "a request must be a mapping with optional 'config' and "
            "'arrays' keys, got %r" % (request,)
        )
    unknown = set(request) - {"config", "arrays"}
    if unknown:
        raise ReproError(
            "unknown request keys %s (expected 'config' and/or 'arrays')"
            % ", ".join(sorted(map(repr, unknown)))
        )
    return dict(request.get("config") or {}), request.get("arrays")


class CompiledProgram:
    """An executable artifact addressed by its content digest."""

    def __init__(
        self,
        payload: Dict[str, object],
        metrics: Optional[Metrics] = None,
        from_cache: bool = False,
        engine=None,
        plan: Optional[Dict[str, object]] = None,
        tracer=None,
        cache=None,
    ) -> None:
        self._payload = payload
        #: Optional :class:`repro.service.cache.ArtifactCache`; lets the
        #: ``c`` backend reuse content-addressed ``.so`` artifacts
        #: instead of re-invoking the compiler.
        self._cache = cache
        self.metrics = metrics or Metrics()
        #: Optional :class:`repro.obs.Tracer`; every ``execute`` records
        #: an ``execute`` span when it is present and enabled.
        self._tracer = tracer
        #: Whether this instance was served from the artifact cache.
        self.from_cache = from_cache
        #: Tile engine handed to ``np-par`` executions (None: the
        #: process-wide default engine).
        self.engine = engine
        #: The serving plan this artifact runs under: level, backend,
        #: workers, tile shape, and whether the autotuner chose it.
        #: Every ``execute`` records it, so ``repro serve --stats`` can
        #: attribute request counts (and tail latency) to plans.
        self._plan = plan or {
            "level": payload.get("level"),
            "backend": payload.get("backend"),
            "workers": None,
            "tile_shape": None,
            "tuned": False,
        }
        self._lock = threading.Lock()
        #: backend name -> compiled ``run`` callable (codegen backends).
        self._runners: Dict[str, Callable] = {}
        #: Loaded native kernel (``c`` backend), memoized per instance.
        self._native_kernel_obj = None

    # -- payload views -----------------------------------------------------

    @property
    def digest(self) -> str:
        return self._payload["digest"]

    @property
    def backend(self) -> str:
        return self._payload["backend"]

    @property
    def level(self) -> str:
        return self._payload["level"]

    @property
    def config(self) -> Dict[str, object]:
        """The config bindings this artifact was compiled under."""
        return dict(self._payload.get("config") or {})

    @property
    def scalar_program(self) -> ScalarProgram:
        return self._payload["scalar_program"]

    @property
    def code(self) -> Optional[str]:
        """The rendered backend source stored in the artifact (codegen
        backends only)."""
        return self._payload.get("code")

    @property
    def compile_timings(self) -> Dict[str, float]:
        return dict(self._payload.get("compile_timings") or {})

    @property
    def plan(self) -> Dict[str, object]:
        """The serving plan: level/backend/workers/tile_shape/tuned."""
        return dict(self._plan)

    @property
    def plan_id(self) -> str:
        """A compact plan label, e.g. ``c2+f4/np-par/w4/t32x1600``."""
        parts = [str(self._plan.get("level")), str(self._plan.get("backend"))]
        workers = self._plan.get("workers")
        if workers is not None:
            parts.append("w%d" % workers)
        tile_shape = self._plan.get("tile_shape")
        if tile_shape is not None:
            if isinstance(tile_shape, (list, tuple)):
                parts.append("t%s" % "x".join(str(e) for e in tile_shape))
            else:
                parts.append("t%s" % tile_shape)
        return "/".join(parts)

    # -- execution ---------------------------------------------------------

    def execute(
        self, request: Request = None, backend: Optional[str] = None
    ) -> ExecutionResult:
        """Run once; ``request`` may seed arrays: ``{"arrays": {"A": nd}}``.

        A request naming config bindings different from this artifact's is
        rejected — route it through ``Service.submit`` instead, which
        compiles (or cache-hits) the artifact for that binding.
        """
        backend_name = get_backend(backend or self.backend).name
        config, arrays = split_request(request)
        if arrays is not None:
            from repro.scalarize.emit_common import validate_inputs

            arrays = validate_inputs(self.scalar_program, arrays)
        if config and config != {
            name: self.config.get(name) for name in config
        }:
            raise ReproError(
                "request rebinds configs %s but this artifact was compiled "
                "with %r; submit the request through a Service so it is "
                "routed to the artifact for that binding"
                % (sorted(config), self.config)
            )
        tracer = self._tracer
        span_cm = (
            tracer.span(
                "execute",
                digest=self.digest,
                backend=backend_name,
                plan=self.plan_id,
            )
            if tracer is not None and tracer.enabled
            else NOOP_SPAN
        )
        with span_cm, self.metrics.time("execute.%s" % backend_name):
            if backend_name in _RENDERERS:
                runner = self._runner(backend_name)
                if backend_name == "np-par":
                    raw_arrays, raw_scalars = runner(arrays, self.engine)
                else:
                    raw_arrays, raw_scalars = runner(arrays)
                result = ExecutionResult(dict(raw_arrays), dict(raw_scalars))
            elif backend_name == "c":
                from repro.exec import native
                from repro.scalarize.codegen_c import c_abi

                kernel = self._native_kernel()
                raw_arrays, raw_scalars = native.run_kernel(
                    kernel, c_abi(self.scalar_program), arrays
                )
                result = ExecutionResult(dict(raw_arrays), dict(raw_scalars))
            else:
                result = get_backend(backend_name).execute(
                    self.scalar_program, arrays
                )
        self.metrics.incr("execute.requests")
        self.metrics.incr("plan.%s" % self.plan_id)
        if self._plan.get("tuned"):
            self.metrics.incr("execute.tuned_requests")
        return result

    def execute_many(self, requests, workers: Optional[int] = None):
        """Run a batch of requests, optionally across a thread pool."""
        requests = list(requests)
        if workers is not None and workers > 1 and len(requests) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(self.execute, requests))
        return [self.execute(request) for request in requests]

    # -- codegen runner memoization ---------------------------------------

    def _runner(self, backend_name: str) -> Callable:
        with self._lock:
            runner = self._runners.get(backend_name)
        if runner is not None:
            return runner
        module_name, renderer_name, filename = _RENDERERS[backend_name]
        source = self.code if backend_name == self.backend else None
        if source is None:
            # Cross-backend execution of an artifact rendered for another
            # backend: render this one's code on first use.
            module = __import__(module_name, fromlist=[renderer_name])
            with self.metrics.time("compile.codegen"):
                source = getattr(module, renderer_name)(self.scalar_program)
        namespace: Dict[str, object] = {}
        exec(compile(source, filename, "exec"), namespace)
        runner = namespace["run"]
        with self._lock:
            self._runners[backend_name] = runner
        return runner

    # -- native kernel memoization ----------------------------------------

    def _native_kernel(self):
        """The loaded ``.so`` for this artifact, reusing every cache tier.

        Resolution order: this instance's memo, the per-process kernel
        memo, the content-addressed ``.so`` artifact cache (a warm serve
        performs *zero* compiler invocations), and only then the host
        ``cc`` — with the resulting shared object stored back into the
        artifact cache for the next process.
        """
        with self._lock:
            kernel = self._native_kernel_obj
        if kernel is not None:
            return kernel
        from repro.exec import native
        from repro.util.errors import BackendUnavailableError

        cc = native.find_cc()
        if cc is None:
            raise BackendUnavailableError(
                "the c backend needs a host C compiler "
                "(cc, gcc or clang on PATH, or REPRO_CC=/path/to/cc)"
            )
        source = self.code if self.backend == "c" else None
        if source is None:
            # Cross-backend execution of an artifact rendered for another
            # backend: render the translation unit on first use.
            from repro.scalarize.codegen_c import render_c_module

            with self.metrics.time("compile.codegen"):
                source = render_c_module(self.scalar_program)
        kernel = native.cached_kernel(source, cc)
        if kernel is None:
            kernel = self._load_or_compile_native(source, cc)
            native.remember_kernel(source, cc, kernel)
        with self._lock:
            self._native_kernel_obj = kernel
        return kernel

    def _load_or_compile_native(self, source: str, cc: str):
        from repro.exec import native
        from repro.service import fingerprint

        native_key = None
        if self._cache is not None:
            native_key = fingerprint.native_digest(
                self.digest,
                native.compiler_identity(cc),
                native.DEFAULT_CFLAGS,
                code_version=self._cache.code_version,
            )
            so_path = self._cache.get_native(native_key)
            if so_path is not None:
                return native.NativeKernel(so_path)
        with self.metrics.time("compile.cc"):
            so_bytes = native.compile_shared(source, cc)
        self.metrics.incr("native.cc_invocations")
        if self._cache is not None and native_key is not None:
            self._cache.put_native(native_key, so_bytes)
        return native.load_kernel(so_bytes)

    def __repr__(self) -> str:
        return "CompiledProgram(%s, level=%s, backend=%s%s)" % (
            self.digest[:12],
            self.level,
            self.backend,
            ", cached" if self.from_cache else "",
        )
