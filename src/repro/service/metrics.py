"""Counters and timers for the serving layer.

One :class:`Metrics` instance aggregates everything a service does:
cache hits/misses, per-pass compile time (``compile.normalize``,
``compile.deps``, ``compile.fusion``, ``compile.scalarize``,
``compile.codegen``), per-backend execution time
(``execute.codegen_np`` etc.), and the autotuner's ``tune.*`` timers.
Timer snapshots carry tail percentiles (``p50_s``/``p95_s``/``p99_s``,
from a bounded reservoir) so tuned and default plans can be compared on
tail latency, not just means.  Snapshots are plain JSON-serializable dicts,
printed by ``repro serve --stats`` and exportable with ``--stats-json``.

All mutation is lock-protected so ``Service.submit_many`` can record
from worker-pool threads.
"""

from __future__ import annotations

import json
import random
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional

#: Bound on the per-timer sample reservoir the percentiles are computed
#: from.  256 float samples keep the p95 of a steady-state latency
#: distribution within a few percent while costing 2 KB per timer.
RESERVOIR_SIZE = 256

#: Histogram bucket upper bounds (seconds) every timer accumulates into,
#: exported as cumulative Prometheus ``le`` buckets (plus ``+Inf``).
#: Log-spaced from 100 us to 10 s — compile passes sit in the low
#: buckets, executions and tuner measurements in the upper ones.
HISTOGRAM_BUCKETS_S = (0.0001, 0.001, 0.01, 0.1, 1.0, 10.0)


class TimerStat:
    """Aggregate of one named timer: count / total / min / max seconds,
    a bounded reservoir for tail percentiles (p50/p95), and fixed
    histogram buckets for Prometheus exposition.

    The reservoir holds a uniform sample of all observations (classic
    reservoir sampling with a fixed-seed generator, so snapshots are
    reproducible given the same observation sequence); percentiles over
    it approximate the true distribution without unbounded memory."""

    __slots__ = ("count", "total", "min", "max", "samples", "buckets", "_rng")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.samples: List[float] = []
        #: Non-cumulative per-bucket counts; the last slot is overflow
        #: (observations above every bound in HISTOGRAM_BUCKETS_S).
        self.buckets: List[int] = [0] * (len(HISTOGRAM_BUCKETS_S) + 1)
        self._rng = random.Random(0x5EED)

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)
        for index, bound in enumerate(HISTOGRAM_BUCKETS_S):
            if seconds <= bound:
                self.buckets[index] += 1
                break
        else:
            self.buckets[-1] += 1
        if len(self.samples) < RESERVOIR_SIZE:
            self.samples.append(seconds)
        else:
            slot = self._rng.randrange(self.count)
            if slot < RESERVOIR_SIZE:
                self.samples[slot] = seconds

    def merge(self, other: "TimerStat") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.buckets = [
            mine + theirs for mine, theirs in zip(self.buckets, other.buckets)
        ]
        combined = self.samples + other.samples
        if len(combined) > RESERVOIR_SIZE:
            combined = self._rng.sample(combined, RESERVOIR_SIZE)
        self.samples = combined

    def bucket_counts(self) -> Dict[str, int]:
        """Cumulative counts keyed by Prometheus ``le`` bound strings."""
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, count in zip(HISTOGRAM_BUCKETS_S, self.buckets):
            running += count
            cumulative["%g" % bound] = running
        cumulative["+Inf"] = running + self.buckets[-1]
        return cumulative

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) over the sample reservoir."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.total / self.count if self.count else 0.0,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
            "p50_s": self.percentile(0.50),
            "p95_s": self.percentile(0.95),
            "p99_s": self.percentile(0.99),
            "buckets": self.bucket_counts(),
        }


class Metrics:
    """A thread-safe registry of named counters and timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, TimerStat] = {}

    # -- recording ---------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def register(self, names: Iterable[str]) -> None:
        """Pre-seed counters at zero so they are visible before first use.

        A registered-but-never-incremented counter (an unused backend,
        a shed path that never fired) must still appear in ``/metrics``
        and ``repro stats`` output — scrape-twin dashboards break when a
        series vanishes instead of reading 0.  Existing counts are left
        untouched.
        """
        with self._lock:
            for name in names:
                self._counters.setdefault(name, 0)

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = TimerStat()
            stat.observe(seconds)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Time a block: ``with metrics.time("compile.normalize"): ...``"""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    def merge(self, other: "Metrics") -> None:
        """Fold another registry's counts into this one."""
        with other._lock:
            counters = dict(other._counters)
            timers = {name: stat for name, stat in other._timers.items()}
        with self._lock:
            for name, amount in counters.items():
                self._counters[name] = self._counters.get(name, 0) + amount
            for name, stat in timers.items():
                mine = self._timers.get(name)
                if mine is None:
                    mine = self._timers[name] = TimerStat()
                mine.merge(stat)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def timer(self, name: str) -> Optional[Dict[str, float]]:
        with self._lock:
            stat = self._timers.get(name)
            return stat.snapshot() if stat else None

    def snapshot(self) -> Dict[str, object]:
        """All counters and timers as one JSON-serializable dict."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "timers": {
                    name: stat.snapshot()
                    for name, stat in sorted(self._timers.items())
                },
            }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()
