"""The compile-once serving front end.

A :class:`Service` owns one artifact cache and one metrics registry and
turns source programs into :class:`CompiledProgram` artifacts:

* ``compile(source)`` — probe the cache by content digest; on a miss run
  the full pipeline (normalize → ASDG → fusion/contraction → scalarize →
  codegen) with every pass timed, then persist the artifact.
* ``submit(source, request)`` — compile (or hit) and execute one request.
* ``submit_many(source, requests, workers=N)`` — compile once, execute a
  batch of requests with varying config bindings / initial arrays,
  optionally fanned out over a thread pool.

The paper's thesis is that array-level fusion and contraction analysis is
cheap; this layer makes it *one-time*, so repeated traffic pays only
execution cost (the Bohrium fuse-cache / Dask compile-once pattern).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.exec import ExecutionResult, get_backend
from repro.fusion import C2P, LEVELS_BY_NAME, Level, plan_program
from repro.ir import normalize_source
from repro.obs.tracer import NOOP_SPAN, TracedTimers, resolve_tracer
from repro.scalarize import (
    render_c_module,
    render_numpy,
    render_python,
    scalarize,
)
from repro.service import fingerprint
from repro.service.cache import ArtifactCache
from repro.service.compiled import CompiledProgram, Request, split_request
from repro.service.metrics import Metrics
from repro.util.errors import ReproError

#: Compile passes timed on every cold compile, in pipeline order.
COMPILE_PASSES = (
    "compile.normalize",
    "compile.deps",
    "compile.fusion",
    "compile.scalarize",
    "compile.codegen",
    "compile.cc",
)


def _resolve_level(level: Union[Level, str, None], default: str) -> Level:
    if level is None:
        level = default
    if isinstance(level, Level):
        return level
    if level == C2P.name:
        return C2P
    resolved = LEVELS_BY_NAME.get(level)
    if resolved is None:
        raise ReproError(
            "unknown level %r (choose from %s)"
            % (level, ", ".join(sorted(set(LEVELS_BY_NAME) | {C2P.name})))
        )
    return resolved


class Service:
    """A long-lived compiler service with a two-tier artifact cache."""

    def __init__(
        self,
        level: Union[Level, str] = "c2",
        backend: str = "codegen_np",
        cache: Optional[ArtifactCache] = None,
        cache_dir: Optional[str] = None,
        persistent: bool = True,
        metrics: Optional[Metrics] = None,
        workers: Optional[int] = None,
        tile_shape=None,
        self_temp_policy: str = "always",
        simplify: bool = False,
        tune: object = False,
        trace: object = None,
    ) -> None:
        self.level = _resolve_level(level, "c2")
        self.backend = get_backend(backend).name
        self.metrics = metrics or Metrics()
        # Every statically-named counter starts visible at zero, so a
        # scrape before (or without) traffic still exports the full set.
        from repro.obs.registry import registered_counter_names

        self.metrics.register(registered_counter_names())
        #: Structured tracing (``repro.obs``): ``trace`` may be a
        #: :class:`repro.obs.Tracer`, True/False, or None to consult
        #: ``$REPRO_TRACE``.  The tracer always exists; every traced
        #: section branches on ``tracer.enabled`` first, so a disabled
        #: tracer costs one check and no allocation per section.
        self.tracer = resolve_tracer(trace)
        self.cache = cache or ArtifactCache(
            root=cache_dir, persistent=persistent, metrics=self.metrics
        )
        self.workers = workers
        self.tile_shape = tile_shape
        self.self_temp_policy = self_temp_policy
        self.simplify = simplify
        #: Default tuning behavior for ``compile``/``submit`` calls that
        #: do not pass ``tune=`` themselves: False (never consult the
        #: tuning DB), True (consult the default DB), or a
        #: :class:`repro.tune.tunedb.TuneDB` instance.
        self.tune = tune
        #: Tile engine shared by every ``np-par`` execution this service
        #: runs, so tile/sweep/serial-fallback counts land in the
        #: service's metrics registry.
        from repro.parallel.engine import TileEngine

        self.tile_engine = TileEngine(
            workers=workers,
            tile_shape=tile_shape,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        #: Engines for tuned plans that force a specific worker count /
        #: tile shape, keyed by (workers, tile_shape) so every artifact
        #: tuned to one configuration shares one pool.
        self._engines: Dict[tuple, object] = {}
        self._engines_lock = threading.Lock()
        self._tunedb = None
        #: Single-flight compilation: digest -> in-progress Future, so
        #: concurrent misses on one digest run the pipeline exactly once.
        self._inflight: Dict[str, Future] = {}
        self._inflight_lock = threading.Lock()

    # -- compile -----------------------------------------------------------

    def digest_for(
        self,
        source: str,
        level: Union[Level, str, None] = None,
        config: Optional[Mapping[str, object]] = None,
        backend: Optional[str] = None,
    ) -> str:
        """The content address ``compile`` would use for these inputs."""
        level_obj = _resolve_level(level, self.level.name)
        backend_name = get_backend(backend or self.backend).name
        return fingerprint.source_digest(
            source,
            level_obj.name,
            config,
            backend_name,
            self.self_temp_policy,
            self.simplify,
            code_version=self.cache.code_version,
        )

    # -- tuning ------------------------------------------------------------

    def tunedb(self):
        """The tuning database this service consults (created lazily)."""
        if self._tunedb is None:
            from repro.tune.tunedb import TuneDB

            self._tunedb = TuneDB(
                metrics=self.metrics, code_version=self.cache.code_version
            )
        return self._tunedb

    def _tuned_plan(self, source, config, tune):
        """The stored winning plan for these inputs, or None.

        ``tune`` may be False/None (never consult the DB), True (the
        default DB) or a :class:`repro.tune.tunedb.TuneDB`.
        """
        if tune is None:
            tune = self.tune
        if not tune:
            return None
        from repro.tune.tunedb import TuneDB

        db = tune if isinstance(tune, TuneDB) else self.tunedb()
        record = db.get(
            db.digest_for(source, config, self.self_temp_policy, self.simplify)
        )
        if record is None:
            self.metrics.incr("tune.plan_misses")
            return None
        self.metrics.incr("tune.plan_applied")
        return record.plan

    def engine_for(self, workers=None, tile_shape=None):
        """A shared tile engine for a specific (workers, tile shape).

        Defaults fall through to the service-wide engine; tuned
        configurations each get one pool, reused across artifacts.
        """
        if workers is None and tile_shape is None:
            return self.tile_engine
        if isinstance(tile_shape, list):
            tile_shape = tuple(tile_shape)
        key = (workers, tile_shape)
        with self._engines_lock:
            engine = self._engines.get(key)
            if engine is None:
                from repro.parallel.engine import TileEngine

                engine = self._engines[key] = TileEngine(
                    workers=workers if workers is not None else self.workers,
                    tile_shape=tile_shape,
                    metrics=self.metrics,
                    tracer=self.tracer,
                )
            return engine

    # -- compile (continued) ----------------------------------------------

    def compile(
        self,
        source: str,
        level: Union[Level, str, None] = None,
        config: Optional[Mapping[str, object]] = None,
        backend: Optional[str] = None,
        tune: object = None,
    ) -> CompiledProgram:
        """Compile once (or fetch the cached artifact) for these inputs.

        With ``tune`` (or a service-wide ``tune=`` default), the tuning
        database is consulted first; a stored plan overrides the level,
        backend, worker count and tile shape, and the artifact is served
        exactly as if those had been requested directly.
        """
        tuned = self._tuned_plan(source, config, tune)
        if tuned is not None:
            level = tuned.level
            backend = tuned.backend
        level_obj = _resolve_level(level, self.level.name)
        backend_name = get_backend(backend or self.backend).name
        plan = {
            "level": level_obj.name,
            "backend": backend_name,
            "workers": tuned.workers if tuned is not None else None,
            "tile_shape": tuned.tile_shape if tuned is not None else None,
            "tuned": tuned is not None,
        }
        digest = self.digest_for(source, level_obj, config, backend_name)
        return self._serve(
            digest,
            plan,
            lambda: self._build(source, level_obj, config, backend_name, digest),
        )

    def compile_ir(
        self,
        program: object,
        level: Union[Level, str, None] = None,
        backend: Optional[str] = None,
        digest: Optional[str] = None,
    ) -> CompiledProgram:
        """Compile a prebuilt *normalized IR* program (or fetch its artifact).

        ``program`` is an :class:`repro.ir.IRProgram` or a zero-argument
        callable returning one.  The callable form is the tracing-frontend
        fast path: callers that can address the artifact by their own
        content digest (``fingerprint.trace_digest`` of a recorded
        expression graph) pass it as ``digest`` and pay for lowering only
        on a cache miss — a warm probe never builds the IR at all.

        Identical to :meth:`compile` minus the normalize pass: cache
        probe, single-flight build, per-pass spans, artifact persistence.
        """
        level_obj = _resolve_level(level, self.level.name)
        backend_name = get_backend(backend or self.backend).name
        if callable(program):
            build_ir = program
        else:
            build_ir = lambda: program  # noqa: E731
        if digest is None:
            built = build_ir()
            build_ir = lambda: built  # noqa: E731
            digest = fingerprint.ir_digest(
                built,
                level_obj.name,
                backend_name,
                code_version=self.cache.code_version,
            )
        plan = {
            "level": level_obj.name,
            "backend": backend_name,
            "workers": None,
            "tile_shape": None,
            "tuned": False,
        }
        return self._serve(
            digest,
            plan,
            lambda: self._build_ir(build_ir, level_obj, backend_name, digest),
        )

    def _serve(self, digest, plan, build_payload) -> CompiledProgram:
        """Cache probe + single-flight build, shared by every compile path."""
        tracer = self.tracer
        compile_cm = (
            tracer.span(
                "compile",
                digest=digest,
                level=plan["level"],
                backend=plan["backend"],
            )
            if tracer.enabled
            else NOOP_SPAN
        )
        with compile_cm as compile_span:
            lookup_cm = (
                tracer.span("cache.lookup", digest=digest)
                if tracer.enabled
                else NOOP_SPAN
            )
            with lookup_cm as lookup_span:
                payload = self.cache.get(digest)
                lookup_span.set("hit", payload is not None)
            if payload is not None:
                self.metrics.incr("cache.hits")
                compile_span.set("cache_hit", True)
                return self._wrap(payload, from_cache=True, plan=plan)
            compile_span.set("cache_hit", False)

            # Single-flight: the first thread to miss owns the build;
            # every concurrent miss on the same digest waits for its
            # result instead of repeating the pipeline.
            with self._inflight_lock:
                future = self._inflight.get(digest)
                owner = future is None
                if owner:
                    future = self._inflight[digest] = Future()
            if not owner:
                return self._wrap(future.result(), from_cache=True, plan=plan)
            try:
                # Cross-process single-flight: take the cache-dir lock
                # for this digest, then re-probe — another process may
                # have persisted the artifact while we waited.
                with self.cache.build_lock(digest):
                    payload = self.cache.get(digest)
                    from_cache = payload is not None
                    if from_cache:
                        self.metrics.incr("cache.hits")
                        compile_span.set("cache_hit", True)
                    else:
                        self.metrics.incr("cache.misses")
                        payload = build_payload()
                        self.cache.put(digest, payload)
                future.set_result(payload)
            except BaseException as error:
                future.set_exception(error)
                raise
            finally:
                with self._inflight_lock:
                    self._inflight.pop(digest, None)
            return self._wrap(payload, from_cache=from_cache, plan=plan)

    def _wrap(
        self,
        payload: Dict[str, object],
        from_cache: bool,
        plan: Optional[Dict[str, object]] = None,
    ) -> CompiledProgram:
        engine = self.tile_engine
        if plan is not None and plan.get("backend") == "np-par":
            engine = self.engine_for(plan.get("workers"), plan.get("tile_shape"))
        return CompiledProgram(
            payload,
            metrics=self.metrics,
            from_cache=from_cache,
            engine=engine,
            plan=plan,
            tracer=self.tracer,
            cache=self.cache,
        )

    def _build(
        self,
        source: str,
        level: Level,
        config: Optional[Mapping[str, object]],
        backend_name: str,
        digest: str,
    ) -> Dict[str, object]:
        build = Metrics()
        self.metrics.incr("service.compiles")
        # Per-pass spans ride the same timers= hook the metrics use: the
        # fanout forwards each ``compile.*`` section to both sinks, so
        # spans nest under the active ``compile`` span automatically.
        timers = TracedTimers(build, self.tracer if self.tracer.enabled else None)
        with build.time("compile.total"):
            with timers.time("compile.normalize"):
                program = normalize_source(source, config, self.self_temp_policy)
                if self.simplify:
                    from repro.ir import simplify_program

                    simplify_program(program)
            scalar_program, code = self._plan_and_render(
                program, level, backend_name, timers
            )
            if backend_name == "c" and code is not None:
                self._compile_native(digest, code, timers)
        return self._finish_build(
            build, digest, level, config, backend_name, scalar_program, code
        )

    def _build_ir(
        self,
        build_ir,
        level: Level,
        backend_name: str,
        digest: str,
    ) -> Dict[str, object]:
        """The miss path for :meth:`compile_ir`: no normalize pass."""
        build = Metrics()
        self.metrics.incr("service.compiles")
        timers = TracedTimers(build, self.tracer if self.tracer.enabled else None)
        with build.time("compile.total"):
            program = build_ir()
            scalar_program, code = self._plan_and_render(
                program, level, backend_name, timers
            )
            if backend_name == "c" and code is not None:
                self._compile_native(digest, code, timers)
        return self._finish_build(
            build, digest, level, None, backend_name, scalar_program, code
        )

    def _plan_and_render(self, program, level, backend_name, timers):
        """Fuse, scalarize and render one normalized program."""
        # plan_program times compile.deps / compile.fusion internally.
        plan = plan_program(program, level, timers=timers)
        with timers.time("compile.scalarize"):
            scalar_program = scalarize(program, plan)
        code: Optional[str] = None
        with timers.time("compile.codegen"):
            if backend_name == "codegen_py":
                code = render_python(scalar_program)
            elif backend_name == "codegen_np":
                code = render_numpy(scalar_program)
            elif backend_name == "np-par":
                from repro.parallel.engine import render_numpy_par

                code = render_numpy_par(scalar_program)
            elif backend_name == "c":
                code = render_c_module(scalar_program)
        return scalar_program, code

    def _compile_native(self, digest: str, code: str, timers) -> None:
        """Eagerly compile a ``c`` artifact's translation unit.

        Runs on the build (miss) path only, so the ``compile.cc`` span
        and ``native.cc_invocations`` counter measure exactly the cold
        cost a warm serve avoids.  The shared object lands in the
        content-addressed cache keyed by :func:`fingerprint.native_digest`
        (payload digest x compiler identity x flags); the per-process
        kernel memo is primed so this service never recompiles either.
        Machines without a C compiler skip silently — execution raises
        ``BackendUnavailableError`` there, but the rendered C in the
        payload stays inspectable and cacheable.
        """
        from repro.exec import native

        cc = native.find_cc()
        if cc is None:
            return
        native_key = fingerprint.native_digest(
            digest,
            native.compiler_identity(cc),
            native.DEFAULT_CFLAGS,
            code_version=self.cache.code_version,
        )
        if self.cache.get_native(native_key) is not None:
            return
        if native.cached_kernel(code, cc) is not None:
            return
        with timers.time("compile.cc"):
            so_bytes = native.compile_shared(code, cc)
        self.metrics.incr("native.cc_invocations")
        self.cache.put_native(native_key, so_bytes)
        native.remember_kernel(code, cc, native.load_kernel(so_bytes))

    def _finish_build(
        self, build, digest, level, config, backend_name, scalar_program, code
    ) -> Dict[str, object]:
        snapshot = build.snapshot()["timers"]
        timings = {
            name: stats["total_s"]
            for name, stats in snapshot.items()
        }
        self.metrics.merge(build)
        return {
            "digest": digest,
            "level": level.name,
            "backend": backend_name,
            "config": dict(config or {}),
            "self_temp_policy": self.self_temp_policy,
            "simplify": self.simplify,
            "scalar_program": scalar_program,
            "code": code,
            "compile_timings": timings,
        }

    # -- serving -----------------------------------------------------------

    def _route(
        self,
        source: str,
        request: Request,
        level: Union[Level, str, None],
        config: Optional[Mapping[str, object]],
        backend: Optional[str],
        compiled_by_digest: Dict[str, CompiledProgram],
        tune: object = None,
    ):
        """Resolve one request to its per-binding artifact plus arrays.

        Config bindings are compile-time constants (normalization folds
        them into region bounds), so each distinct binding is its own
        content-addressed artifact; repeats of a binding hit the memory
        tier through ``compiled_by_digest`` without re-probing the cache.
        """
        request_config, arrays = split_request(request)
        merged = dict(config or {})
        merged.update(request_config)
        route_key = self.digest_for(source, level, merged, backend)
        compiled = compiled_by_digest.get(route_key)
        if compiled is None:
            compiled = self.compile(source, level, merged, backend, tune=tune)
            compiled_by_digest[route_key] = compiled
        return compiled, ({"arrays": arrays} if arrays is not None else None)

    def submit(
        self,
        source: str,
        request: Request = None,
        level: Union[Level, str, None] = None,
        config: Optional[Mapping[str, object]] = None,
        backend: Optional[str] = None,
        tune: object = None,
    ) -> ExecutionResult:
        """Compile (or hit the cache) and execute one request."""
        compiled, exec_request = self._route(
            source, request, level, config, backend, {}, tune=tune
        )
        return compiled.execute(exec_request)

    def submit_many(
        self,
        source: str,
        requests: Sequence[Request],
        workers: Optional[int] = None,
        level: Union[Level, str, None] = None,
        config: Optional[Mapping[str, object]] = None,
        backend: Optional[str] = None,
        tune: object = None,
    ) -> List[ExecutionResult]:
        """Compile once per distinct config binding, execute every request.

        Results are order-preserving.  With ``workers > 1`` executions fan
        out across a thread pool; compilation stays on the calling thread
        (each distinct binding compiles exactly once, warm bindings are
        cache hits).
        """
        compiled_by_digest: Dict[str, CompiledProgram] = {}
        routed = [
            self._route(
                source, request, level, config, backend, compiled_by_digest,
                tune=tune,
            )
            for request in requests
        ]
        if workers is None:
            workers = self.workers
        self.metrics.incr("service.batches")
        if workers is not None and workers > 1 and len(routed) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(
                    pool.map(
                        lambda pair: pair[0].execute(pair[1]),
                        routed,
                    )
                )
        return [compiled.execute(request) for compiled, request in routed]

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Counters, timers and cache occupancy as one JSON-ready dict."""
        return {
            "metrics": self.metrics.snapshot(),
            "cache": self.cache.stats(),
        }
