"""The compile-once serving front end.

A :class:`Service` owns one artifact cache and one metrics registry and
turns source programs into :class:`CompiledProgram` artifacts:

* ``compile(source)`` — probe the cache by content digest; on a miss run
  the full pipeline (normalize → ASDG → fusion/contraction → scalarize →
  codegen) with every pass timed, then persist the artifact.
* ``submit(source, request)`` — compile (or hit) and execute one request.
* ``submit_many(source, requests, workers=N)`` — compile once, execute a
  batch of requests with varying config bindings / initial arrays,
  optionally fanned out over a thread pool.

The paper's thesis is that array-level fusion and contraction analysis is
cheap; this layer makes it *one-time*, so repeated traffic pays only
execution cost (the Bohrium fuse-cache / Dask compile-once pattern).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.exec import ExecutionResult, get_backend
from repro.fusion import C2P, LEVELS_BY_NAME, Level, plan_program
from repro.ir import normalize_source
from repro.scalarize import render_numpy, render_python, scalarize
from repro.service import fingerprint
from repro.service.cache import ArtifactCache
from repro.service.compiled import CompiledProgram, Request, split_request
from repro.service.metrics import Metrics
from repro.util.errors import ReproError

#: Compile passes timed on every cold compile, in pipeline order.
COMPILE_PASSES = (
    "compile.normalize",
    "compile.deps",
    "compile.fusion",
    "compile.scalarize",
    "compile.codegen",
)


def _resolve_level(level: Union[Level, str, None], default: str) -> Level:
    if level is None:
        level = default
    if isinstance(level, Level):
        return level
    if level == C2P.name:
        return C2P
    resolved = LEVELS_BY_NAME.get(level)
    if resolved is None:
        raise ReproError(
            "unknown level %r (choose from %s)"
            % (level, ", ".join(sorted(set(LEVELS_BY_NAME) | {C2P.name})))
        )
    return resolved


class Service:
    """A long-lived compiler service with a two-tier artifact cache."""

    def __init__(
        self,
        level: Union[Level, str] = "c2",
        backend: str = "codegen_np",
        cache: Optional[ArtifactCache] = None,
        cache_dir: Optional[str] = None,
        persistent: bool = True,
        metrics: Optional[Metrics] = None,
        workers: Optional[int] = None,
        self_temp_policy: str = "always",
        simplify: bool = False,
    ) -> None:
        self.level = _resolve_level(level, "c2")
        self.backend = get_backend(backend).name
        self.metrics = metrics or Metrics()
        self.cache = cache or ArtifactCache(
            root=cache_dir, persistent=persistent, metrics=self.metrics
        )
        self.workers = workers
        self.self_temp_policy = self_temp_policy
        self.simplify = simplify
        #: Tile engine shared by every ``np-par`` execution this service
        #: runs, so tile/sweep/serial-fallback counts land in the
        #: service's metrics registry.
        from repro.parallel.engine import TileEngine

        self.tile_engine = TileEngine(workers=workers, metrics=self.metrics)
        #: Single-flight compilation: digest -> in-progress Future, so
        #: concurrent misses on one digest run the pipeline exactly once.
        self._inflight: Dict[str, Future] = {}
        self._inflight_lock = threading.Lock()

    # -- compile -----------------------------------------------------------

    def digest_for(
        self,
        source: str,
        level: Union[Level, str, None] = None,
        config: Optional[Mapping[str, object]] = None,
        backend: Optional[str] = None,
    ) -> str:
        """The content address ``compile`` would use for these inputs."""
        level_obj = _resolve_level(level, self.level.name)
        backend_name = get_backend(backend or self.backend).name
        return fingerprint.source_digest(
            source,
            level_obj.name,
            config,
            backend_name,
            self.self_temp_policy,
            self.simplify,
            code_version=self.cache.code_version,
        )

    def compile(
        self,
        source: str,
        level: Union[Level, str, None] = None,
        config: Optional[Mapping[str, object]] = None,
        backend: Optional[str] = None,
    ) -> CompiledProgram:
        """Compile once (or fetch the cached artifact) for these inputs."""
        level_obj = _resolve_level(level, self.level.name)
        backend_name = get_backend(backend or self.backend).name
        digest = self.digest_for(source, level_obj, config, backend_name)
        payload = self.cache.get(digest)
        if payload is not None:
            self.metrics.incr("cache.hits")
            return self._wrap(payload, from_cache=True)

        # Single-flight: the first thread to miss owns the build; every
        # concurrent miss on the same digest waits for its result instead
        # of repeating the pipeline.
        with self._inflight_lock:
            future = self._inflight.get(digest)
            owner = future is None
            if owner:
                future = self._inflight[digest] = Future()
        if not owner:
            return self._wrap(future.result(), from_cache=True)
        try:
            self.metrics.incr("cache.misses")
            payload = self._build(source, level_obj, config, backend_name, digest)
            self.cache.put(digest, payload)
            future.set_result(payload)
        except BaseException as error:
            future.set_exception(error)
            raise
        finally:
            with self._inflight_lock:
                self._inflight.pop(digest, None)
        return self._wrap(payload, from_cache=False)

    def _wrap(self, payload: Dict[str, object], from_cache: bool) -> CompiledProgram:
        return CompiledProgram(
            payload,
            metrics=self.metrics,
            from_cache=from_cache,
            engine=self.tile_engine,
        )

    def _build(
        self,
        source: str,
        level: Level,
        config: Optional[Mapping[str, object]],
        backend_name: str,
        digest: str,
    ) -> Dict[str, object]:
        build = Metrics()
        self.metrics.incr("service.compiles")
        with build.time("compile.total"):
            with build.time("compile.normalize"):
                program = normalize_source(source, config, self.self_temp_policy)
                if self.simplify:
                    from repro.ir import simplify_program

                    simplify_program(program)
            # plan_program times compile.deps / compile.fusion internally.
            plan = plan_program(program, level, timers=build)
            with build.time("compile.scalarize"):
                scalar_program = scalarize(program, plan)
            code: Optional[str] = None
            with build.time("compile.codegen"):
                if backend_name == "codegen_py":
                    code = render_python(scalar_program)
                elif backend_name == "codegen_np":
                    code = render_numpy(scalar_program)
                elif backend_name == "np-par":
                    from repro.parallel.engine import render_numpy_par

                    code = render_numpy_par(scalar_program)
        snapshot = build.snapshot()["timers"]
        timings = {
            name: stats["total_s"]
            for name, stats in snapshot.items()
        }
        self.metrics.merge(build)
        return {
            "digest": digest,
            "level": level.name,
            "backend": backend_name,
            "config": dict(config or {}),
            "self_temp_policy": self.self_temp_policy,
            "simplify": self.simplify,
            "scalar_program": scalar_program,
            "code": code,
            "compile_timings": timings,
        }

    # -- serving -----------------------------------------------------------

    def _route(
        self,
        source: str,
        request: Request,
        level: Union[Level, str, None],
        config: Optional[Mapping[str, object]],
        backend: Optional[str],
        compiled_by_digest: Dict[str, CompiledProgram],
    ):
        """Resolve one request to its per-binding artifact plus arrays.

        Config bindings are compile-time constants (normalization folds
        them into region bounds), so each distinct binding is its own
        content-addressed artifact; repeats of a binding hit the memory
        tier through ``compiled_by_digest`` without re-probing the cache.
        """
        request_config, arrays = split_request(request)
        merged = dict(config or {})
        merged.update(request_config)
        digest = self.digest_for(source, level, merged, backend)
        compiled = compiled_by_digest.get(digest)
        if compiled is None:
            compiled = self.compile(source, level, merged, backend)
            compiled_by_digest[digest] = compiled
        return compiled, ({"arrays": arrays} if arrays is not None else None)

    def submit(
        self,
        source: str,
        request: Request = None,
        level: Union[Level, str, None] = None,
        config: Optional[Mapping[str, object]] = None,
        backend: Optional[str] = None,
    ) -> ExecutionResult:
        """Compile (or hit the cache) and execute one request."""
        compiled, exec_request = self._route(
            source, request, level, config, backend, {}
        )
        return compiled.execute(exec_request)

    def submit_many(
        self,
        source: str,
        requests: Sequence[Request],
        workers: Optional[int] = None,
        level: Union[Level, str, None] = None,
        config: Optional[Mapping[str, object]] = None,
        backend: Optional[str] = None,
    ) -> List[ExecutionResult]:
        """Compile once per distinct config binding, execute every request.

        Results are order-preserving.  With ``workers > 1`` executions fan
        out across a thread pool; compilation stays on the calling thread
        (each distinct binding compiles exactly once, warm bindings are
        cache hits).
        """
        compiled_by_digest: Dict[str, CompiledProgram] = {}
        routed = [
            self._route(source, request, level, config, backend, compiled_by_digest)
            for request in requests
        ]
        if workers is None:
            workers = self.workers
        self.metrics.incr("service.batches")
        if workers is not None and workers > 1 and len(routed) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(
                    pool.map(
                        lambda pair: pair[0].execute(pair[1]),
                        routed,
                    )
                )
        return [compiled.execute(request) for compiled, request in routed]

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Counters, timers and cache occupancy as one JSON-ready dict."""
        return {
            "metrics": self.metrics.snapshot(),
            "cache": self.cache.stats(),
        }
