"""Stable content hashing for compiled artifacts.

A compiled artifact is addressed by the SHA-256 of a *canonical
serialization* of everything that determines its contents:

* the program — either the raw source text (fast path, no parsing needed
  to probe the cache) or the normalized IR (via :func:`canonical_program`,
  a deterministic nested-list encoding of every statement, region and
  expression);
* the optimization level, configuration bindings, and normalization
  options (``self_temp_policy``, constant folding);
* the execution backend whose code the artifact carries;
* the code version — bumped whenever the compiler or the artifact format
  changes meaning, so stale artifacts can never be replayed.

The encoding uses only sorted JSON of plain ints/floats/strings/lists, so
digests are identical across processes, platforms, and ``PYTHONHASHSEED``
values — unlike ``hash()``, which is salted per process.  Statement
``uid`` fields (process-local counters) are deliberately excluded.
"""

from __future__ import annotations

import hashlib
import json
from typing import List, Mapping, Optional

from repro import __version__
from repro.ir import expr as ir
from repro.ir.linexpr import LinearExpr
from repro.ir.program import IRProgram
from repro.ir.region import Region
from repro.ir.statement import (
    ArrayStatement,
    BoundaryStatement,
    IfStatement,
    IRStatement,
    LoopStatement,
    ReductionStatement,
    ScalarStatement,
    WhileStatement,
)
from repro.util.errors import ReproError

#: Stamped into every digest and artifact; bump on any change to the
#: compiler, the generated code, or the artifact layout.
CODE_VERSION = "repro-%s/artifact-3" % __version__


# -- canonical encodings ----------------------------------------------------


def canonical_linexpr(expr: LinearExpr) -> list:
    """``const + sum(coef*var)`` as ``[const, [name, coef], ...]``.

    ``LinearExpr.terms`` is already sorted by name, so the encoding is
    order-independent of how the expression was built.
    """
    return [expr.const] + [[name, coef] for name, coef in expr.terms]


def canonical_region(region: Region) -> list:
    return [
        [canonical_linexpr(lo), canonical_linexpr(hi)] for lo, hi in region.dims
    ]


def canonical_expr(expr: ir.IRExpr) -> list:
    """A deterministic nested-list encoding of an IR expression tree."""
    if isinstance(expr, ir.Const):
        # Distinguish 1 from 1.0 from True: the type changes semantics.
        return ["const", type(expr.value).__name__, repr(expr.value)]
    if isinstance(expr, ir.ScalarRef):
        return ["scalar", expr.name]
    if isinstance(expr, ir.ArrayRef):
        return ["array", expr.name, list(expr.offset)]
    if isinstance(expr, ir.IndexRef):
        return ["index", expr.dim]
    if isinstance(expr, ir.BinOp):
        return [
            "bin",
            expr.op,
            canonical_expr(expr.left),
            canonical_expr(expr.right),
        ]
    if isinstance(expr, ir.UnOp):
        return ["un", expr.op, canonical_expr(expr.operand)]
    if isinstance(expr, ir.Call):
        return ["call", expr.name] + [canonical_expr(a) for a in expr.args]
    if isinstance(expr, ir.Reduce):
        return [
            "reduce",
            expr.op,
            canonical_region(expr.region),
            canonical_expr(expr.operand),
        ]
    raise ReproError("cannot fingerprint expression %r" % (expr,))


def canonical_statement(stmt: IRStatement) -> list:
    """A deterministic encoding of one IR statement (uids excluded)."""
    if isinstance(stmt, ReductionStatement):
        return [
            "reduction",
            canonical_region(stmt.region),
            stmt.scalar_target,
            stmt.op,
            canonical_expr(stmt.rhs),
        ]
    if isinstance(stmt, ArrayStatement):
        return [
            "assign",
            canonical_region(stmt.region),
            stmt.target,
            canonical_expr(stmt.rhs),
        ]
    if isinstance(stmt, ScalarStatement):
        return ["sassign", stmt.target, canonical_expr(stmt.rhs)]
    if isinstance(stmt, BoundaryStatement):
        return ["boundary", canonical_region(stmt.region), stmt.kind, stmt.array]
    if isinstance(stmt, LoopStatement):
        return [
            "for",
            stmt.var,
            canonical_expr(stmt.lo),
            canonical_expr(stmt.hi),
            bool(stmt.downto),
            [canonical_statement(s) for s in stmt.body],
        ]
    if isinstance(stmt, IfStatement):
        return [
            "if",
            canonical_expr(stmt.cond),
            [canonical_statement(s) for s in stmt.then_body],
            [canonical_statement(s) for s in stmt.else_body or []],
        ]
    if isinstance(stmt, WhileStatement):
        return [
            "while",
            canonical_expr(stmt.cond),
            [canonical_statement(s) for s in stmt.body],
        ]
    raise ReproError("cannot fingerprint statement %r" % (stmt,))


def canonical_program(program: IRProgram) -> dict:
    """The whole normalized program as a JSON-serializable structure.

    Declaration tables are sorted by name (their dict order is a parse
    artifact); the body keeps statement order, which is semantic.
    """
    return {
        "name": program.name,
        "configs": [
            [name, type(value).__name__, repr(value)]
            for name, value in sorted(program.configs.items())
        ],
        "arrays": [
            # The trailing "output" marker is appended only when set, so
            # programs that predate it (every parsed mini-ZPL program)
            # keep their historical digests.
            [
                name,
                canonical_region(info.region),
                info.elem_kind,
                bool(info.is_temp),
            ]
            + (["output"] if getattr(info, "is_output", False) else [])
            for name, info in sorted(program.arrays.items())
        ],
        "scalars": [
            [name, info.kind] for name, info in sorted(program.scalars.items())
        ],
        "body": [canonical_statement(stmt) for stmt in program.body],
    }


# -- digests -----------------------------------------------------------------


def _digest_of(payload: dict) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _canonical_config(config: Optional[Mapping[str, object]]) -> List[list]:
    return [
        [name, type(value).__name__, repr(value)]
        for name, value in sorted((config or {}).items())
    ]


def ir_digest(
    program: IRProgram,
    level: str,
    backend: str,
    code_version: Optional[str] = None,
) -> str:
    """Content digest of a normalized IR program plus compile options."""
    return _digest_of(
        {
            "kind": "ir",
            "program": canonical_program(program),
            "level": level,
            "backend": backend,
            "code_version": code_version or CODE_VERSION,
        }
    )


def source_digest(
    source: str,
    level: str,
    config: Optional[Mapping[str, object]] = None,
    backend: str = "interp",
    self_temp_policy: str = "always",
    simplify: bool = False,
    code_version: Optional[str] = None,
) -> str:
    """Content digest of raw source text plus every compile option.

    This is the serving fast path: the cache can be probed without
    parsing.  Any byte change to the source, any config rebinding, level,
    backend, normalization policy or code version yields a new address.
    """
    return _digest_of(
        {
            "kind": "source",
            "source": source,
            "level": level,
            "config": _canonical_config(config),
            "backend": backend,
            "self_temp_policy": self_temp_policy,
            "simplify": bool(simplify),
            "code_version": code_version or CODE_VERSION,
        }
    )


def trace_digest(
    trace: dict,
    level: str,
    backend: str,
    code_version: Optional[str] = None,
) -> str:
    """Content digest of a traced ``repro.array`` expression graph.

    ``trace`` is the canonical encoding :meth:`repro.array.graph.Trace.canonical`
    produces: shapes, dtypes and op topology only — input *values* are
    deliberately excluded, so every execution of the same program shape
    shares one address and hits the artifact cache without re-lowering.
    """
    return _digest_of(
        {
            "kind": "trace",
            "trace": trace,
            "level": level,
            "backend": backend,
            "code_version": code_version or CODE_VERSION,
        }
    )


def native_digest(
    payload_digest: str,
    compiler: str,
    flags,
    code_version: Optional[str] = None,
) -> str:
    """Content digest of a compiled native shared object.

    Extends the artifact ``payload_digest`` (which already covers the
    program, level, config and backend) with the *compiler identity* and
    the exact flag vector: upgrading the system compiler or changing
    ``DEFAULT_CFLAGS`` must re-key every cached ``.so``, because the
    machine code they would produce differs.  Computed at use time — the
    compiler is a property of the machine, not of the program.
    """
    return _digest_of(
        {
            "kind": "native",
            "payload": payload_digest,
            "compiler": compiler,
            "flags": list(flags),
            "code_version": code_version or CODE_VERSION,
        }
    )


def tune_digest(
    source: str,
    config: Optional[Mapping[str, object]] = None,
    self_temp_policy: str = "always",
    simplify: bool = False,
    code_version: Optional[str] = None,
) -> str:
    """Content digest of the *tuning problem* for a program.

    Deliberately excludes the optimization level, backend, worker count
    and tile shape — those are the decision variables the autotuner
    chooses, so every candidate plan of one program shares this address
    and the winning plan is stored once per (program, machine).
    """
    return _digest_of(
        {
            "kind": "tune",
            "source": source,
            "config": _canonical_config(config),
            "self_temp_policy": self_temp_policy,
            "simplify": bool(simplify),
            "code_version": code_version or CODE_VERSION,
        }
    )
