"""Structured tracing and metrics export (zero dependencies).

The observability layer for the serving stack:

* :class:`Tracer` — thread-safe nested spans with monotonic timestamps,
  cross-thread parent attachment (tile-engine workers attach to the
  request that submitted them), and bounded ring-buffer retention;
* exporters — Chrome trace-event JSON (loadable in Perfetto),
  human-readable span trees, and Prometheus text exposition of the
  metrics registry;
* :mod:`repro.obs.registry` — the single source of truth for every
  span, counter and timer name (the docs tables are generated from it).

Tracing is opt-in (``Service(trace=True)`` / ``$REPRO_TRACE`` /
``repro trace``); when off, the only cost on any hot path is one
``tracer.enabled`` branch and no allocation (:data:`NOOP_SPAN`).

    from repro.obs import Tracer, render_tree

    tracer = Tracer()
    service = Service(trace=tracer, persistent=False)
    service.submit(source)
    print(render_tree(tracer.spans()))
"""

from repro.obs.export import chrome_trace, render_tree, write_chrome_trace
from repro.obs.prom import render_prometheus
from repro.obs.tracer import (
    DEFAULT_CAPACITY,
    ENV_TRACE,
    NOOP_SPAN,
    Span,
    TracedTimers,
    Tracer,
    env_trace_value,
    resolve_tracer,
    trace_enabled_from_env,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "ENV_TRACE",
    "NOOP_SPAN",
    "Span",
    "TracedTimers",
    "Tracer",
    "chrome_trace",
    "env_trace_value",
    "render_prometheus",
    "render_tree",
    "resolve_tracer",
    "trace_enabled_from_env",
    "write_chrome_trace",
]
