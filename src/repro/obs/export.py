"""Span exporters: Chrome trace-event JSON and human-readable trees.

``chrome_trace`` renders completed spans in the Trace Event Format
(``{"traceEvents": [...]}``), the JSON schema `Perfetto
<https://ui.perfetto.dev>`_ and ``chrome://tracing`` load directly.
Every span becomes one complete ("ph": "X") event carrying its
microsecond ``ts``/``dur``, the process id, the recording thread id
(so pool workers get their own timeline rows) and its attributes as
``args``; thread-name metadata events label the rows.

``render_tree`` prints the same spans as an indented tree — the
``repro trace`` default — reconstructing parent/child structure from
span ids, which works across threads because cross-thread spans carry
their submitting span's id as ``parent_id``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.obs.tracer import Span


def chrome_trace(spans: Sequence[Span], pid: Optional[int] = None) -> Dict:
    """Spans as a Trace Event Format document (JSON-serializable dict)."""
    if pid is None:
        pid = os.getpid()
    events: List[Dict] = []
    seen_threads: Dict[int, str] = {}
    for span in spans:
        if span.thread_id not in seen_threads:
            seen_threads[span.thread_id] = span.thread_name
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": span.thread_id,
                    "args": {"name": span.thread_name},
                }
            )
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ts": span.start_us,
                "dur": span.duration_us,
                "pid": pid,
                "tid": span.thread_id,
                "args": dict(span.attrs),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    spans: Sequence[Span], path: str, pid: Optional[int] = None
) -> None:
    """Write ``chrome_trace(spans)`` to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(spans, pid=pid), handle, indent=1, default=str)
        handle.write("\n")


def _format_attrs(attrs: Dict[str, object]) -> str:
    if not attrs:
        return ""
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        if key == "digest" and isinstance(value, str):
            value = value[:12]
        parts.append("%s=%s" % (key, value))
    return "  [%s]" % " ".join(parts)


def render_tree(spans: Sequence[Span], unit: str = "ms") -> str:
    """Spans as an indented tree, one line per span.

    Children are ordered by start time; spans whose parent was evicted
    from the ring buffer (or never recorded) render as roots.  ``unit``
    is ``"ms"`` or ``"us"``.
    """
    scale, suffix = (1000.0, "ms") if unit == "ms" else (1.0, "us")
    by_id = {span.span_id: span for span in spans}
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        parent_id = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent_id, []).append(span)
    for group in children.values():
        group.sort(key=lambda s: (s.start_us, s.span_id))

    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        lines.append(
            "%s%-*s %10.3f %s%s"
            % (
                "  " * depth,
                max(28 - 2 * depth, 1),
                span.name,
                span.duration_us / scale,
                suffix,
                _format_attrs(span.attrs),
            )
        )
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)
