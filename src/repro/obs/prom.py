"""Prometheus text exposition of the metrics registry.

Renders a :meth:`repro.service.metrics.Metrics.snapshot` (and optionally
:meth:`repro.service.cache.ArtifactCache.stats`) in the Prometheus text
format (version 0.0.4): counters as one ``repro_counter_total`` family
labelled by name, timers as a ``repro_timer_seconds`` histogram family
(cumulative ``_bucket`` series from the :data:`repro.service.metrics.
HISTOGRAM_BUCKETS_S` bounds, plus ``_sum``/``_count``), and cache
occupancy as gauges.  ``repro stats --format=prom`` and the library
entry point :func:`render_prometheus` both produce it.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(
    metrics_snapshot: Optional[Mapping[str, object]] = None,
    cache_stats: Optional[Mapping[str, object]] = None,
) -> str:
    """The metrics snapshot (and cache stats) as Prometheus text."""
    lines: List[str] = []

    counters = dict((metrics_snapshot or {}).get("counters") or {})
    lines.append(
        "# HELP repro_counter_total Event counters from the repro metrics "
        "registry, labelled by dotted counter name."
    )
    lines.append("# TYPE repro_counter_total counter")
    for name in sorted(counters):
        lines.append(
            'repro_counter_total{name="%s"} %s'
            % (_escape(name), _fmt(counters[name]))
        )

    timers: Dict[str, Mapping] = dict(
        (metrics_snapshot or {}).get("timers") or {}
    )
    lines.append(
        "# HELP repro_timer_seconds Timed sections (compile passes, "
        "backend executions, tuner measurements), labelled by timer name."
    )
    lines.append("# TYPE repro_timer_seconds histogram")
    for name in sorted(timers):
        stats = timers[name]
        label = _escape(name)
        for bound, cumulative in (stats.get("buckets") or {}).items():
            lines.append(
                'repro_timer_seconds_bucket{name="%s",le="%s"} %s'
                % (label, bound, _fmt(cumulative))
            )
        lines.append(
            'repro_timer_seconds_sum{name="%s"} %s'
            % (label, _fmt(stats.get("total_s", 0.0)))
        )
        lines.append(
            'repro_timer_seconds_count{name="%s"} %s'
            % (label, _fmt(stats.get("count", 0)))
        )

    if cache_stats:
        gauges = (
            ("memory_entries", "Live artifacts in the in-memory LRU tier."),
            ("memory_limit", "Entry bound of the memory tier."),
            ("disk_entries", "Artifacts in the on-disk store."),
            ("disk_bytes", "Bytes used by the on-disk store."),
            ("disk_limit_bytes", "Size bound of the on-disk store."),
        )
        for key, help_text in gauges:
            if key not in cache_stats:
                continue
            metric = "repro_cache_%s" % key
            lines.append("# HELP %s %s" % (metric, help_text))
            lines.append("# TYPE %s gauge" % metric)
            lines.append("%s %s" % (metric, _fmt(cache_stats[key])))

    return "\n".join(lines) + "\n"
