"""The single source of truth for observability names.

Every span, counter and timer the stack emits is declared here once,
with its attributes and meaning.  ``docs/OBSERVABILITY.md`` embeds the
markdown this module generates (between ``BEGIN/END generated``
markers), and a test regenerates the tables and diffs them against the
docs — so the reference cannot drift from the code, and a span name
used in code but missing here fails the integration test.

Regenerate the doc tables with::

    PYTHONPATH=src python -m repro.obs.registry
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple


class SpanDef(NamedTuple):
    name: str
    attrs: Tuple[str, ...]
    emitted_by: str
    description: str


class CounterDef(NamedTuple):
    name: str
    description: str


class TimerDef(NamedTuple):
    name: str
    description: str


#: Every span name the stack can record.  A trailing ``*`` marks a
#: dynamic family (the prefix is fixed, the suffix varies per instance).
SPANS: List[SpanDef] = [
    SpanDef(
        "compile",
        ("digest", "level", "backend", "cache_hit"),
        "Service.compile",
        "One compile request end to end: digest probe, cache lookup, and "
        "(on a miss) the full pipeline.  cache_hit records the outcome.",
    ),
    SpanDef(
        "cache.lookup",
        ("digest", "hit"),
        "Service.compile",
        "The artifact-cache probe (memory tier, then disk tier).",
    ),
    SpanDef(
        "compile.normalize",
        (),
        "Service._build",
        "Parsing, semantic checking and normalization to array normal form.",
    ),
    SpanDef(
        "compile.deps",
        (),
        "fusion.pipeline.plan_block",
        "ASDG construction (UDV dependence analysis); once per basic block.",
    ),
    SpanDef(
        "compile.fusion",
        (),
        "fusion.pipeline.plan_block",
        "The level's fusion and contraction passes; once per basic block.",
    ),
    SpanDef(
        "compile.cse",
        (),
        "fusion.pipeline.plan_block",
        "Array-level redundancy elimination (value numbering, hoist "
        "selection and rewrite); once per basic block, +cse levels only.",
    ),
    SpanDef(
        "compile.scalarize",
        (),
        "Service._build",
        "Loop-nest construction and contraction rewrites.",
    ),
    SpanDef(
        "compile.codegen",
        (),
        "Service._build",
        "Rendering backend source (Python / NumPy / tile-parallel NumPy / C).",
    ),
    SpanDef(
        "compile.cc",
        (),
        "Service._compile_native",
        "One host C-compiler invocation turning the rendered translation "
        "unit into a shared object; build-path (cache-miss) only — warm "
        "serves load the content-addressed .so without this span.",
    ),
    SpanDef(
        "trace.record",
        ("nodes", "outputs", "digest"),
        "array.materialize.compute_nodes",
        "Capturing one repro.array expression graph: canonical encoding "
        "plus the structural trace digest that addresses the artifact "
        "cache (input values excluded).",
    ),
    SpanDef(
        "trace.lower",
        ("digest", "statements", "arrays"),
        "array.materialize.compute_nodes",
        "Lowering a traced graph to normalized IR (one statement per "
        "traced op); runs only on an artifact-cache miss, nested inside "
        "that compile span.",
    ),
    SpanDef(
        "execute",
        ("digest", "backend", "plan"),
        "CompiledProgram.execute",
        "One request execution on the artifact's backend.  plan is the "
        "serving plan id (level/backend/workers/tile shape).",
    ),
    SpanDef(
        "par.sweep",
        ("cluster", "tiles", "workers"),
        "TileEngine.sweep",
        "One barrier-delimited tile sweep of a fusible cluster.  cluster "
        "is the generated kernel's name (stable within one artifact).",
    ),
    SpanDef(
        "par.tile",
        ("tile",),
        "TileEngine.sweep",
        "One tile of a sweep; recorded on the worker thread that ran it "
        "but parented to the submitting sweep span, so Perfetto shows "
        "per-worker timelines under one sweep.",
    ),
    SpanDef(
        "tune.measure",
        ("repeats", "aborted"),
        "tune.runner.Runner.measure",
        "Measuring one candidate plan: warmup, timed repeats, variance "
        "guard.",
    ),
    SpanDef(
        "daemon.request",
        ("digest", "status"),
        "daemon.server.Daemon.execute_frame",
        "One daemon execute request end to end: decode, admission, "
        "shared-memory transport, worker round trip, response.  status "
        "is the HTTP status (200, 503 shed, 413 oversized, 500 failed).",
    ),
    SpanDef(
        "comm.exchange",
        ("ordinal", "arrays", "planned_bytes", "measured_bytes",
         "model_bytes", "corner_bytes", "post_point", "wait_point"),
        "exec.mp_shard.execute_sharded",
        "One executed wire message of the mp-shard backend: the shared-"
        "memory write/read round trip moving one or more combined border "
        "strips between worker processes, recorded after the run with "
        "the worker-measured duration.",
    ),
    SpanDef(
        "daemon.dispatch",
        ("digest", "batch", "worker"),
        "daemon.pool.WorkerPool._run_batch",
        "One digest batch crossing a worker pipe: send, execute in the "
        "worker process, reply.  batch is the job count.",
    ),
]

#: Every counter name (``Metrics.incr``).  ``*`` suffixes are dynamic.
COUNTERS: List[CounterDef] = [
    CounterDef("cache.hits", "Service-level artifact-cache hits (any tier)."),
    CounterDef("cache.misses", "Service-level misses: the pipeline ran."),
    CounterDef("cache.memory_hits", "Hits served by the in-memory LRU tier."),
    CounterDef("cache.disk_hits", "Hits served by the on-disk store."),
    CounterDef("cache.memory_evictions", "LRU evictions from the memory tier."),
    CounterDef("cache.disk_evictions", "Size-bound evictions from disk."),
    CounterDef(
        "cache.invalid_artifacts",
        "On-disk artifacts dropped for stamp mismatch or corruption.",
    ),
    CounterDef("cache.write_errors", "Failed disk writes (degraded to memory)."),
    CounterDef(
        "cache.native_hits",
        "Compiled .so artifacts served from the content-addressed store "
        "(each one is a compiler invocation avoided).",
    ),
    CounterDef(
        "native.cc_invocations",
        "Host C-compiler runs performed (cold c-backend compiles only; "
        "zero on a warm serve).",
    ),
    CounterDef("service.compiles", "Cold compiles (misses that ran the pipeline)."),
    CounterDef("service.batches", "submit_many invocations."),
    CounterDef("execute.requests", "Requests executed by CompiledProgram."),
    CounterDef(
        "execute.tuned_requests", "Requests that ran under a tuned plan."
    ),
    CounterDef(
        "plan.*",
        "Requests per serving plan id, e.g. plan.c2/np-par/w4/t32x1600.",
    ),
    CounterDef(
        "trace.materializations",
        "repro.array graph flushes (compute() or an implicit trigger).",
    ),
    CounterDef("par.sweeps", "Tile sweeps executed by the tile engine."),
    CounterDef("par.tiles", "Tiles executed across all sweeps."),
    CounterDef("par.serial_nests", "Nests that took the serial fallback."),
    CounterDef(
        "par.snapshots", "Read snapshots taken for self-hazard statements."
    ),
    CounterDef("tune.measurements", "Candidate measurements taken."),
    CounterDef("tune.extra_repeats", "Variance-guard re-measurements."),
    CounterDef("tune.candidates", "Candidate plans ranked by the prior."),
    CounterDef("tune.plan_applied", "Serves that applied a stored tuned plan."),
    CounterDef("tune.plan_misses", "Tuned serves with no stored plan."),
    CounterDef("tune.db_hits", "Tuning-database record hits."),
    CounterDef("tune.db_misses", "Tuning-database record misses."),
    CounterDef(
        "tune.db_invalid", "Tuning records dropped (stamp/signature mismatch)."
    ),
    CounterDef("tune.db_writes", "Tuning records persisted."),
    CounterDef("tune.db_write_errors", "Failed tuning-record writes."),
    CounterDef(
        "cache.lock_waits",
        "Contended cross-process build-lock acquisitions (another "
        "process was compiling the same digest).",
    ),
    CounterDef("daemon.requests", "Execute requests received by the daemon."),
    CounterDef(
        "daemon.shed",
        "Requests shed with 503 because the admission queue was full.",
    ),
    CounterDef(
        "daemon.oversized",
        "Requests rejected with 413 for exceeding the array-payload bound.",
    ),
    CounterDef(
        "daemon.errors",
        "Requests that failed (protocol errors, worker failures, timeouts).",
    ),
    CounterDef(
        "daemon.dispatches",
        "Digest batches sent to workers (one pipe round trip each).",
    ),
    CounterDef(
        "daemon.worker_restarts",
        "Worker processes restarted after a crash.",
    ),
    CounterDef(
        "daemon.requeued",
        "In-flight jobs requeued after their worker crashed.",
    ),
    CounterDef(
        "daemon.coalesced",
        "Replies served by coalescing an identical pure request in the "
        "same batch onto one execution (scalar-only, no input arrays).",
    ),
    CounterDef(
        "daemon.worker_compiles",
        "Cold compiles performed inside worker processes (with a shared "
        "cache and the build lock, one per digest across the pool).",
    ),
    CounterDef(
        "comm.exchanges",
        "Wire messages executed by the mp-shard backend (after "
        "redundancy elimination and combining).",
    ),
    CounterDef(
        "comm.bytes",
        "Border-strip bytes moved through shared memory, priced at the "
        "model's 8 bytes/element — directly comparable to "
        "comm.analyze_run predictions.",
    ),
    CounterDef(
        "comm.combined",
        "Exchange events merged into an already-counted wire message by "
        "\u00a75.5 message combining.",
    ),
    CounterDef(
        "comm.eliminated",
        "Exchange events skipped entirely by \u00a75.5 redundancy "
        "elimination (the border data was still clean).",
    ),
    CounterDef(
        "comm.fallback_nests",
        "Nests executed whole on rank 0 (gather/scatter) because clamped "
        "execution would violate an intra-nest cut-dimension dependence.",
    ),
    CounterDef(
        "comm.reduce_bytes",
        "Bytes of materialized reduction operands gathered to rank 0 so "
        "scalar folds match the oracle bit-for-bit (kept apart from "
        "comm.bytes: the model does not price reductions).",
    ),
    CounterDef(
        "comm.gather_bytes",
        "Bytes moved by whole-nest fallback gathers and scatters (also "
        "outside the model's strip accounting).",
    ),
    CounterDef(
        "daemon.worker_cc",
        "Host C-compiler invocations inside worker processes (zero on a "
        "warm .so cache).",
    ),
]

#: Every timer name (``Metrics.observe`` / ``Metrics.time``).  Timers
#: carry count/total/min/max, reservoir percentiles (p50/p95) and
#: cumulative histogram buckets (see ``repro.service.metrics``).
TIMERS: List[TimerDef] = [
    TimerDef("compile.total", "The whole pipeline, per cold compile."),
    TimerDef("compile.normalize", "Parse + check + normalize."),
    TimerDef("compile.deps", "ASDG construction (summed over blocks)."),
    TimerDef("compile.fusion", "Fusion/contraction passes (summed over blocks)."),
    TimerDef(
        "compile.cse",
        "Redundancy elimination (summed over blocks; +cse levels only).",
    ),
    TimerDef("compile.scalarize", "Loop-nest construction."),
    TimerDef(
        "trace.lower",
        "repro.array graph-to-IR lowering (cache misses only).",
    ),
    TimerDef("compile.codegen", "Backend source rendering."),
    TimerDef(
        "compile.cc",
        "Host C-compiler invocation (c backend, cache misses only).",
    ),
    TimerDef(
        "execute.*",
        "Per-backend execution time, e.g. execute.codegen_np, "
        "execute.np-par.",
    ),
    TimerDef("tune.total", "One whole tune() call."),
    TimerDef("tune.compile", "Per-level compilation inside tune()."),
    TimerDef("tune.measure", "One candidate measurement (incl. warmup)."),
    TimerDef(
        "comm.exchange",
        "One mp-shard wire message round trip (post write to wait read).",
    ),
    TimerDef(
        "daemon.request",
        "One daemon execute request end to end (front-end view).",
    ),
    TimerDef(
        "daemon.queue_wait",
        "Time a job spent in the admission queue before dispatch.",
    ),
    TimerDef(
        "daemon.dispatch",
        "One digest batch's worker round trip (pipe + execution).",
    ),
]


def _table(header: Tuple[str, ...], rows: List[Tuple[str, ...]]) -> str:
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def spans_reference_markdown() -> str:
    """The span reference table embedded in docs/OBSERVABILITY.md."""
    return _table(
        ("span", "attributes", "emitted by", "meaning"),
        [
            (
                "`%s`" % span.name,
                ", ".join("`%s`" % attr for attr in span.attrs) or "—",
                "`%s`" % span.emitted_by,
                span.description,
            )
            for span in SPANS
        ],
    )


def metrics_reference_markdown() -> str:
    """The counter + timer reference embedded in docs/OBSERVABILITY.md."""
    counters = _table(
        ("counter", "meaning"),
        [("`%s`" % c.name, c.description) for c in COUNTERS],
    )
    timers = _table(
        ("timer", "meaning"),
        [("`%s`" % t.name, t.description) for t in TIMERS],
    )
    return "### Counters\n\n%s\n\n### Timers\n\n%s" % (counters, timers)


def known_span_names() -> List[str]:
    return [span.name for span in SPANS]


def is_known_counter(name: str) -> bool:
    """Whether a recorded counter name is declared (families by prefix)."""
    for counter in COUNTERS:
        if counter.name.endswith("*"):
            if name.startswith(counter.name[:-1]):
                return True
        elif name == counter.name:
            return True
    return False


def registered_counter_names() -> List[str]:
    """Static (non-family) counter names, for zero-value registration.

    Dynamic families (``plan.*``) are excluded: they have no fixed name
    to pre-register.  Seeding these into a ``Metrics`` instance makes
    never-incremented counters visible in ``/metrics`` and
    ``repro stats`` instead of silently absent.
    """
    return [c.name for c in COUNTERS if not c.name.endswith("*")]


def is_known_timer(name: str) -> bool:
    for timer in TIMERS:
        if timer.name.endswith("*"):
            if name.startswith(timer.name[:-1]):
                return True
        elif name == timer.name:
            return True
    return False


if __name__ == "__main__":
    print("## Span reference\n")
    print(spans_reference_markdown())
    print("\n## Metrics reference\n")
    print(metrics_reference_markdown())
