"""Structured tracing: nested spans with bounded retention.

A :class:`Tracer` records *spans* — named, attributed intervals on a
monotonic clock — nested by a per-thread stack, so one traced request
yields a tree: ``compile`` containing the per-pass spans the pipeline's
``timers=`` hook emits, ``execute`` containing ``par.sweep`` containing
one ``par.tile`` per tile.  Worker-pool threads attach their spans to an
explicit parent handle (:meth:`Tracer.current` captured on the
submitting thread), so a tile sweep fanned out over a
``ThreadPoolExecutor`` still hangs off the request that issued it while
every tile keeps its own thread id — exactly what the Chrome trace
viewer needs to draw per-worker timelines.

Completed spans land in a bounded ring buffer (oldest evicted first,
:attr:`Tracer.dropped` counts the loss), so a long-lived service can
leave tracing on without unbounded growth.

The traced-off hot path is one attribute load and one branch:
``tracer.enabled`` is checked *before* building attribute dicts, and
:data:`NOOP_SPAN` — a single shared no-op context manager — is what
every disabled call path enters.  Nothing is allocated and nothing is
recorded (a guard test asserts both).

Everything here is standard library only.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Dict, List, Optional

#: Environment variable that opt-ins tracing for CLI entry points and
#: ``Service(trace=None)``.  Falsy values ("", "0", "false", "off", "no")
#: leave tracing disabled; anything else enables it.  A value containing
#: a path separator or ending in ``.json`` additionally names the file
#: ``repro serve`` writes the Chrome trace to.
ENV_TRACE = "REPRO_TRACE"

#: Default ring-buffer capacity: enough for a traced request batch
#: (thousands of tile spans) at ~200 bytes per span.
DEFAULT_CAPACITY = 65536


def env_trace_value() -> str:
    return os.environ.get(ENV_TRACE, "")


def trace_enabled_from_env() -> bool:
    """Whether ``$REPRO_TRACE`` asks for tracing."""
    return env_trace_value().strip().lower() not in ("", "0", "false", "off", "no")


class Span:
    """One completed (or still-open) interval.

    ``start_us``/``end_us`` are microseconds on the tracer's monotonic
    clock (origin: tracer creation), directly usable as Chrome
    trace-event ``ts``/``dur`` values.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start_us",
        "end_us",
        "attrs",
        "thread_id",
        "thread_name",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start_us: int,
        thread_id: int,
        thread_name: str,
        attrs: Dict[str, object],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_us = start_us
        self.end_us: Optional[int] = None
        self.attrs = attrs
        self.thread_id = thread_id
        self.thread_name = thread_name

    @property
    def duration_us(self) -> int:
        if self.end_us is None:
            return 0
        return self.end_us - self.start_us

    def set(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute."""
        self.attrs[key] = value

    def __repr__(self) -> str:
        return "Span(%s, %dus%s)" % (
            self.name,
            self.duration_us,
            ", " + repr(self.attrs) if self.attrs else "",
        )


class _NoopSpan:
    """The shared do-nothing span every disabled call path enters.

    Entering it yields itself, so ``with tracer.span(...) as span:
    span.set(...)`` works unchanged whether tracing is on or off.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, key: str, value: object) -> None:
        return None


#: The singleton no-op span.  Call sites that must stay allocation-free
#: when tracing is off branch on ``tracer.enabled`` and use this.
NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager recording one span on enter/exit."""

    __slots__ = ("_tracer", "_span", "_parent")

    def __init__(self, tracer: "Tracer", span: Span, parent) -> None:
        self._tracer = tracer
        self._span = span
        self._parent = parent

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if exc_type is not None:
            self._span.attrs["error"] = exc_type.__name__
        self._tracer._finish(self._span, self._parent)


class Tracer:
    """Thread-safe recorder of nested spans with bounded retention."""

    def __init__(
        self,
        enabled: bool = True,
        capacity: int = DEFAULT_CAPACITY,
        clock_ns=time.perf_counter_ns,
    ) -> None:
        self.enabled = enabled
        self.capacity = max(int(capacity), 1)
        self._clock_ns = clock_ns
        self._origin_ns = clock_ns()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        #: Index of the ring buffer's logical start inside ``_spans``.
        self._head = 0
        #: Completed spans evicted because the buffer was full.
        self.dropped = 0

    # -- recording ---------------------------------------------------------

    def _now_us(self) -> int:
        return (self._clock_ns() - self._origin_ns) // 1000

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, parent: Optional[Span] = None, **attrs):
        """Open a span: ``with tracer.span("compile", digest=d) as s:``.

        ``parent`` overrides the per-thread nesting — pass the result of
        :meth:`current` captured on another thread to attach cross-thread
        work (a pool worker's tile) to the span that submitted it.  When
        the tracer is disabled this returns :data:`NOOP_SPAN`; callers on
        hot paths should branch on :attr:`enabled` *before* building
        ``attrs`` so the disabled path allocates nothing.
        """
        if not self.enabled:
            return NOOP_SPAN
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        thread = threading.current_thread()
        span = Span(
            name,
            next(self._ids),
            parent.span_id if parent is not None else None,
            self._now_us(),
            thread.ident or 0,
            thread.name,
            attrs,
        )
        stack.append(span)
        return _ActiveSpan(self, span, parent)

    def _finish(self, span: Span, parent) -> None:
        span.end_us = self._now_us()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # unbalanced exit (generator-held span): drop it anywhere
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            if len(self._spans) - self._head >= self.capacity:
                self._head += 1
                self.dropped += 1
                # Compact lazily so eviction stays O(1) amortized.
                if self._head >= self.capacity:
                    del self._spans[: self._head]
                    self._head = 0
            self._spans.append(span)

    def record(self, name: str, duration_us: float, **attrs) -> None:
        """Record an already-measured interval as a completed span.

        For work timed outside this process (an mp-shard worker's
        exchange round trip): the span is re-anchored to end *now* on
        the tracer's clock with the measured duration, parented to the
        innermost open span on this thread.  No-op when disabled.
        """
        if not self.enabled:
            return
        stack = self._stack()
        parent = stack[-1] if stack else None
        thread = threading.current_thread()
        end_us = self._now_us()
        span = Span(
            name,
            next(self._ids),
            parent.span_id if parent is not None else None,
            max(0, end_us - int(duration_us)),
            thread.ident or 0,
            thread.name,
            attrs,
        )
        span.end_us = end_us
        with self._lock:
            if len(self._spans) - self._head >= self.capacity:
                self._head += 1
                self.dropped += 1
                if self._head >= self.capacity:
                    del self._spans[: self._head]
                    self._head = 0
            self._spans.append(span)

    def current(self) -> Optional[Span]:
        """The innermost span open on *this* thread, or None.

        The returned handle may be passed as ``parent=`` from any other
        thread while the span is still open.
        """
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- reading -----------------------------------------------------------

    def spans(self) -> List[Span]:
        """Completed spans, oldest first (a snapshot copy)."""
        with self._lock:
            return self._spans[self._head :]

    def clear(self) -> None:
        with self._lock:
            self._spans = []
            self._head = 0
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans) - self._head

    def __repr__(self) -> str:
        return "Tracer(enabled=%r, %d spans, %d dropped)" % (
            self.enabled,
            len(self),
            self.dropped,
        )


def resolve_tracer(trace: object) -> Tracer:
    """Normalize a ``trace=`` argument into a :class:`Tracer`.

    ``None`` consults ``$REPRO_TRACE``; ``True``/``False`` force the
    state; an existing :class:`Tracer` passes through.  A disabled
    tracer is still a tracer — call sites branch on ``.enabled``.
    """
    if isinstance(trace, Tracer):
        return trace
    if trace is None:
        return Tracer(enabled=trace_enabled_from_env())
    return Tracer(enabled=bool(trace))


class TracedTimers:
    """Fan one ``timers=`` hook out to a metrics registry *and* a tracer.

    The compile pipeline's ``timers`` duck type is ``.time(name)``
    returning a context manager (:meth:`repro.service.metrics.Metrics.
    time`); this adapter additionally opens a same-named span, so every
    ``compile.*`` pass shows up both as an aggregate timer and as a span
    nested under the active ``compile`` span.
    """

    __slots__ = ("metrics", "tracer")

    def __init__(self, metrics, tracer: Optional[Tracer]) -> None:
        self.metrics = metrics
        self.tracer = tracer

    def time(self, name: str):
        metric_cm = self.metrics.time(name)
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return metric_cm
        return _Both(metric_cm, tracer.span(name))


class _Both:
    """Enter/exit two context managers as one (metrics inner, span outer)."""

    __slots__ = ("_outer", "_inner")

    def __init__(self, inner, outer) -> None:
        self._inner = inner
        self._outer = outer

    def __enter__(self):
        self._outer.__enter__()
        return self._inner.__enter__()

    def __exit__(self, *exc_info):
        try:
            return self._inner.__exit__(*exc_info)
        finally:
            self._outer.__exit__(*exc_info)
