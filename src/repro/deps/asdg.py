"""The Array Statement Dependence Graph (Definition 3).

An ASDG is a labeled acyclic directed graph over the array statements of one
basic block.  Each edge ``(v1, v2)`` means statement ``v2`` depends on
statement ``v1`` and carries a set of ``(variable, unconstrained distance
vector, dependence type)`` labels.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.ir.statement import ArrayStatement
from repro.util.errors import DependenceError
from repro.util.vectors import IntVector, format_vector


class DepType(enum.Enum):
    """The three classical dependence types, plus scalar dependences.

    SCALAR marks a dependence through a scalar written by a fused
    reduction: it orders clusters but can never be carried by a loop, so
    its endpoints may not share a fusible cluster.
    """

    FLOW = "flow"
    ANTI = "anti"
    OUTPUT = "output"
    SCALAR = "scalar"

    def __str__(self) -> str:
        return self.value


class DepLabel:
    """One ``(variable, UDV, type)`` tuple labeling an ASDG edge."""

    __slots__ = ("variable", "udv", "type")

    def __init__(self, variable: str, udv: IntVector, type: DepType) -> None:
        self.variable = variable
        self.udv = tuple(udv)
        self.type = type

    def __repr__(self) -> str:
        return "DepLabel(%s, %s, %s)" % (
            self.variable,
            format_vector(self.udv),
            self.type,
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DepLabel)
            and self.variable == other.variable
            and self.udv == other.udv
            and self.type == other.type
        )

    def __hash__(self) -> int:
        return hash((self.variable, self.udv, self.type))


class ASDG:
    """The dependence graph of one basic block of array statements."""

    def __init__(self, statements: Sequence[ArrayStatement]) -> None:
        self.statements: List[ArrayStatement] = list(statements)
        self._index = {stmt.uid: i for i, stmt in enumerate(self.statements)}
        if len(self._index) != len(self.statements):
            raise DependenceError("duplicate statements in ASDG")
        self._labels: Dict[Tuple[int, int], List[DepLabel]] = {}
        self._succ: Dict[int, Set[int]] = {stmt.uid: set() for stmt in self.statements}
        self._pred: Dict[int, Set[int]] = {stmt.uid: set() for stmt in self.statements}
        # Self dependences: a statement that reads its own target (allowed
        # only when the normalizer's self-temp policy elided the compiler
        # temporary) constrains the loop structure of whatever cluster it
        # joins, but creates no edge (the ASDG stays acyclic).
        self._self_labels: Dict[int, List[DepLabel]] = {}

    # -- construction -------------------------------------------------------

    def add_dependence(
        self, source: ArrayStatement, target: ArrayStatement, label: DepLabel
    ) -> None:
        """Add a dependence edge from ``source`` to ``target``.

        Edges must point forward in statement order — an ASDG represents a
        single basic block and is therefore acyclic by construction.
        """
        if self._index[source.uid] >= self._index[target.uid]:
            raise DependenceError(
                "dependence source must precede target in the block: %r -> %r"
                % (source, target)
            )
        key = (source.uid, target.uid)
        labels = self._labels.setdefault(key, [])
        if label not in labels:
            labels.append(label)
        self._succ[source.uid].add(target.uid)
        self._pred[target.uid].add(source.uid)

    def add_self_dependence(self, stmt: ArrayStatement, label: DepLabel) -> None:
        """Record a within-statement dependence (target read by its own RHS)."""
        labels = self._self_labels.setdefault(stmt.uid, [])
        if label not in labels:
            labels.append(label)

    def self_labels(self, stmt: ArrayStatement) -> List[DepLabel]:
        return list(self._self_labels.get(stmt.uid, ()))

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.statements)

    def statement(self, uid: int) -> ArrayStatement:
        return self.statements[self._index[uid]]

    def position(self, stmt: ArrayStatement) -> int:
        return self._index[stmt.uid]

    def edges(self) -> Iterator[Tuple[ArrayStatement, ArrayStatement, List[DepLabel]]]:
        """All edges with their labels, in deterministic order."""
        for (src_uid, dst_uid) in sorted(self._labels):
            yield (
                self.statement(src_uid),
                self.statement(dst_uid),
                list(self._labels[(src_uid, dst_uid)]),
            )

    def edge_count(self) -> int:
        return len(self._labels)

    def labels(
        self, source: ArrayStatement, target: ArrayStatement
    ) -> List[DepLabel]:
        return list(self._labels.get((source.uid, target.uid), ()))

    def successors(self, stmt: ArrayStatement) -> List[ArrayStatement]:
        return [self.statement(uid) for uid in sorted(self._succ[stmt.uid])]

    def predecessors(self, stmt: ArrayStatement) -> List[ArrayStatement]:
        return [self.statement(uid) for uid in sorted(self._pred[stmt.uid])]

    def dependences_on(self, variable: str) -> List[
        Tuple[ArrayStatement, ArrayStatement, DepLabel]
    ]:
        """All dependences induced by ``variable``."""
        result = []
        for source, target, labels in self.edges():
            for label in labels:
                if label.variable == variable:
                    result.append((source, target, label))
        for stmt in self.statements:
            for label in self._self_labels.get(stmt.uid, ()):
                if label.variable == variable:
                    result.append((stmt, stmt, label))
        return result

    def variables(self) -> List[str]:
        """All array variables referenced in the block, in first-use order."""
        names: List[str] = []
        for stmt in self.statements:
            for name in stmt.referenced_arrays():
                if name not in names:
                    names.append(name)
        return names

    def statements_referencing(self, variable: str) -> List[ArrayStatement]:
        """Statements that read or write ``variable``."""
        result = []
        for stmt in self.statements:
            if stmt.target == variable or any(
                ref.name == variable for ref in stmt.reads()
            ):
                result.append(stmt)
        return result

    def successor_map(self) -> Dict[int, Set[int]]:
        """Adjacency over statement uids (copy; for graph algorithms)."""
        return {uid: set(succs) for uid, succs in self._succ.items()}

    # -- rendering --------------------------------------------------------------

    def render(self) -> str:
        lines = ["ASDG (%d statements, %d edges)" % (len(self), self.edge_count())]
        for i, stmt in enumerate(self.statements):
            lines.append("  v%d: %s" % (i + 1, stmt))
        for source, target, labels in self.edges():
            label_text = ", ".join(
                "(%s, %s, %s)" % (l.variable, format_vector(l.udv), l.type)
                for l in labels
            )
            lines.append(
                "  v%d -> v%d : {%s}"
                % (self.position(source) + 1, self.position(target) + 1, label_text)
            )
        return "\n".join(lines)
