"""Dependence analysis: building the ASDG of a basic block.

For each ordered statement pair and each shared array, the analysis decides
whether the accessed index sets overlap and, if so, adds a flow, anti or
output dependence whose unconstrained distance vector is
``source_offset - target_offset`` (Definition 2).

Accessed sets are the statement region translated by the reference offset.
With affine region bounds the overlap test reduces to per-dimension interval
comparisons whose symbolic parts usually cancel (e.g. two references to row
``i`` of a dynamic region); when they do not, the analysis conservatively
assumes overlap.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.deps.asdg import ASDG, DepLabel, DepType
from repro.ir.linexpr import LinearExpr
from repro.ir.region import Region
from repro.ir.statement import ArrayStatement
from repro.util.vectors import IntVector, sub, zero


def _maybe_nonnegative(expr: LinearExpr) -> bool:
    """True iff ``expr >= 0`` may hold (conservatively true when symbolic)."""
    if expr.is_constant:
        return expr.const >= 0
    return True


def regions_may_overlap(
    region_a: Region, offset_a: IntVector, region_b: Region, offset_b: IntVector
) -> bool:
    """May ``region_a + offset_a`` intersect ``region_b + offset_b``?

    Exact when the symbolic parts of corresponding bounds cancel; otherwise
    conservatively true.
    """
    if region_a.rank != region_b.rank:
        return False
    for dim in range(region_a.rank):
        lo_a = region_a.dims[dim][0] + offset_a[dim]
        hi_a = region_a.dims[dim][1] + offset_a[dim]
        lo_b = region_b.dims[dim][0] + offset_b[dim]
        hi_b = region_b.dims[dim][1] + offset_b[dim]
        # Overlap in this dimension requires lo_a <= hi_b and lo_b <= hi_a.
        if not _maybe_nonnegative(hi_b - lo_a):
            return False
        if not _maybe_nonnegative(hi_a - lo_b):
            return False
    return True


class _Access:
    """One array access of a statement: read or write, with its offset."""

    __slots__ = ("array", "offset", "is_write")

    def __init__(self, array: str, offset: IntVector, is_write: bool) -> None:
        self.array = array
        self.offset = tuple(offset)
        self.is_write = is_write


def _accesses(stmt: ArrayStatement) -> List[_Access]:
    result = []
    if stmt.writes_array:
        result.append(_Access(stmt.target, zero(stmt.rank), True))
    seen = set()
    for ref in stmt.reads():
        key = (ref.name, ref.offset)
        if key in seen:
            continue
        seen.add(key)
        result.append(_Access(ref.name, ref.offset, False))
    return result


def build_asdg(block: Sequence[ArrayStatement]) -> ASDG:
    """Build the ASDG of a basic block of normalized array statements.

    Besides the array dependences of Definition 2, scalar dependences are
    added around fused reductions: a statement reading a scalar that a
    reduction in the same block writes (or vice versa) must stay in a
    different cluster, ordered after (before) the reduction.
    """
    graph = ASDG(block)
    accesses = [_accesses(stmt) for stmt in block]
    for stmt in block:
        if not stmt.writes_array:
            continue
        seen_offsets = set()
        for ref in stmt.reads():
            if ref.name == stmt.target and ref.offset not in seen_offsets:
                seen_offsets.add(ref.offset)
                graph.add_self_dependence(
                    stmt, DepLabel(stmt.target, ref.offset, DepType.ANTI)
                )
    scalar_writes = [set(stmt.scalar_writes()) for stmt in block]
    scalar_reads = [
        {ref.name for ref in stmt.rhs.scalar_refs()} for stmt in block
    ]
    for i, earlier in enumerate(block):
        for j in range(i + 1, len(block)):
            later = block[j]
            for src in accesses[i]:
                for dst in accesses[j]:
                    if src.array != dst.array:
                        continue
                    dep_type = _classify(src.is_write, dst.is_write)
                    if dep_type is None:
                        continue
                    if not regions_may_overlap(
                        earlier.region, src.offset, later.region, dst.offset
                    ):
                        continue
                    udv = sub(src.offset, dst.offset)
                    graph.add_dependence(
                        earlier, later, DepLabel(src.array, udv, dep_type)
                    )
            conflicts = (
                (scalar_writes[i] & scalar_reads[j])
                | (scalar_reads[i] & scalar_writes[j])
                | (scalar_writes[i] & scalar_writes[j])
            )
            for name in sorted(conflicts):
                graph.add_dependence(
                    earlier,
                    later,
                    DepLabel(name, (), DepType.SCALAR),
                )
    return graph


def _classify(source_is_write: bool, target_is_write: bool) -> Optional[DepType]:
    if source_is_write and not target_is_write:
        return DepType.FLOW
    if not source_is_write and target_is_write:
        return DepType.ANTI
    if source_is_write and target_is_write:
        return DepType.OUTPUT
    return None  # read-after-read is not a dependence
