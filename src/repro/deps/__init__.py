"""Array-level dependence analysis: UDVs and the ASDG."""

from repro.deps.analysis import build_asdg, regions_may_overlap
from repro.deps.asdg import ASDG, DepLabel, DepType

__all__ = ["ASDG", "DepLabel", "DepType", "build_asdg", "regions_may_overlap"]
