"""Small integer-vector arithmetic used throughout the compiler.

Offsets, unconstrained distance vectors (UDVs), and loop structure vectors
are all fixed-rank integer tuples.  This module centralizes their algebra so
the rest of the compiler can treat them as values.
"""

from __future__ import annotations

from typing import Iterable, Tuple

IntVector = Tuple[int, ...]


def vec(*components: int) -> IntVector:
    """Build an integer vector from its components."""
    return tuple(int(c) for c in components)


def zero(rank: int) -> IntVector:
    """The null vector of the given rank."""
    if rank < 0:
        raise ValueError("rank must be non-negative, got %d" % rank)
    return (0,) * rank


def is_zero(v: IntVector) -> bool:
    """True iff every component of ``v`` is zero."""
    return all(c == 0 for c in v)


def add(a: IntVector, b: IntVector) -> IntVector:
    """Component-wise sum of two vectors of equal rank."""
    _check_ranks(a, b)
    return tuple(x + y for x, y in zip(a, b))


def sub(a: IntVector, b: IntVector) -> IntVector:
    """Component-wise difference ``a - b`` of two vectors of equal rank."""
    _check_ranks(a, b)
    return tuple(x - y for x, y in zip(a, b))


def negate(v: IntVector) -> IntVector:
    """Component-wise negation."""
    return tuple(-c for c in v)


def lex_nonnegative(v: IntVector) -> bool:
    """True iff ``v`` is lexicographically nonnegative.

    A vector is lexicographically nonnegative if it is the null vector or its
    leftmost non-zero component is positive (Section 2.2 of the paper).
    """
    for c in v:
        if c > 0:
            return True
        if c < 0:
            return False
    return True


def lex_positive(v: IntVector) -> bool:
    """True iff the leftmost non-zero component of ``v`` is positive."""
    for c in v:
        if c > 0:
            return True
        if c < 0:
            return False
    return False


def manhattan(v: IntVector) -> int:
    """Sum of absolute component values."""
    return sum(abs(c) for c in v)


def constrain(u: IntVector, p: IntVector) -> IntVector:
    """Constrain an unconstrained distance vector by a loop structure vector.

    Given UDV ``u`` and loop structure vector ``p`` (a signed permutation of
    ``(1, ..., n)``), the constrained distance vector ``d`` has
    ``d_i = sign(p_i) * u_{|p_i|}`` — loop ``i`` iterates over array dimension
    ``|p_i|`` in the direction of the sign of ``p_i`` (Definition 4).
    """
    _check_ranks(u, p)
    d = []
    for pi in p:
        if pi == 0:
            raise ValueError("loop structure vector may not contain 0: %r" % (p,))
        dim = abs(pi) - 1
        if dim >= len(u):
            raise ValueError(
                "loop structure vector %r names dimension %d beyond rank %d"
                % (p, dim + 1, len(u))
            )
        sign = 1 if pi > 0 else -1
        d.append(sign * u[dim])
    return tuple(d)


def is_loop_structure_vector(p: IntVector) -> bool:
    """True iff ``p`` is a signed permutation of ``(1, ..., n)``."""
    n = len(p)
    seen = set()
    for pi in p:
        if pi == 0 or abs(pi) > n:
            return False
        seen.add(abs(pi))
    return len(seen) == n


def identity_loop_structure(rank: int) -> IntVector:
    """The loop structure vector ``(1, 2, ..., n)``: row-major forward loops."""
    return tuple(range(1, rank + 1))


def format_vector(v: IntVector) -> str:
    """Render a vector as ``(a, b, ...)``."""
    return "(" + ", ".join(str(c) for c in v) + ")"


def parse_vector(text: str) -> IntVector:
    """Parse ``(a, b, ...)`` or ``a, b, ...`` into a vector."""
    body = text.strip()
    if body.startswith("(") and body.endswith(")"):
        body = body[1:-1]
    if not body.strip():
        return ()
    return tuple(int(part.strip()) for part in body.split(","))


def max_abs_per_dim(vectors: Iterable[IntVector]) -> IntVector:
    """Component-wise maximum of absolute values across a set of vectors."""
    result: list = []
    for v in vectors:
        if not result:
            result = [abs(c) for c in v]
            continue
        _check_ranks(tuple(result), v)
        result = [max(r, abs(c)) for r, c in zip(result, v)]
    return tuple(result)


def _check_ranks(a: IntVector, b: IntVector) -> None:
    if len(a) != len(b):
        raise ValueError("rank mismatch: %r vs %r" % (a, b))
