"""Exception hierarchy for the repro compiler."""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SourceLocation:
    """A (line, column) position in a source file, 1-based."""

    __slots__ = ("line", "column")

    def __init__(self, line: int, column: int) -> None:
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return "SourceLocation(%d, %d)" % (self.line, self.column)

    def __str__(self) -> str:
        return "%d:%d" % (self.line, self.column)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourceLocation)
            and self.line == other.line
            and self.column == other.column
        )

    def __hash__(self) -> int:
        return hash((self.line, self.column))


class LexError(ReproError):
    """Raised on an unrecognized character or malformed token."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None):
        self.location = location
        if location is not None:
            message = "%s: %s" % (location, message)
        super().__init__(message)


class ParseError(ReproError):
    """Raised on a syntax error."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None):
        self.location = location
        if location is not None:
            message = "%s: %s" % (location, message)
        super().__init__(message)


class SemanticError(ReproError):
    """Raised on a semantic (name/type/region) error."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None):
        self.location = location
        if location is not None:
            message = "%s: %s" % (location, message)
        super().__init__(message)


class NormalizationError(ReproError):
    """Raised when a statement cannot be put into normal form."""


class DependenceError(ReproError):
    """Raised on an inconsistency while building the ASDG."""


class FusionError(ReproError):
    """Raised on an invalid fusion partition or fusion request."""


class ScalarizationError(ReproError):
    """Raised when scalarization cannot produce a legal loop nest."""


class InterpError(ReproError):
    """Raised on a runtime error in an interpreter."""


class InputError(InterpError):
    """Raised when per-request initial array contents are invalid.

    Covers unknown array names, shape mismatches against the allocation
    region, and dtype mismatches that cannot be cast safely.  Subclasses
    :class:`InterpError` because the interpreter's storage historically
    raised that for seeding errors and callers catch it.
    """


class MachineError(ReproError):
    """Raised on an invalid machine-model configuration."""


class BackendUnavailableError(ReproError):
    """Raised when a backend cannot run on this machine.

    The ``c`` backend needs a host C compiler; on machines without one it
    stays registered (so ``repro backends`` can list and mark it) but any
    attempt to execute raises this, and the tuner excludes it from the
    plan space silently.
    """


class NativeCompileError(ReproError):
    """Raised when the host C compiler rejects a generated translation unit.

    Carries the compiler's stderr: a generated TU failing to compile is a
    code-generator bug, and the diagnostic is the evidence.
    """
