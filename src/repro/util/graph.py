"""Generic directed-graph helpers: topological sort, reachability, cycles.

The ASDG and the fusion machinery need only a handful of graph operations;
implementing them here keeps those modules focused on compiler semantics.
Graphs are represented as adjacency mappings ``{node: set(successors)}``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, TypeVar

from repro.util.errors import ReproError

N = TypeVar("N", bound=Hashable)


class CycleError(ReproError):
    """Raised when a topological sort encounters a cycle."""

    def __init__(self, nodes: Iterable) -> None:
        self.nodes = list(nodes)
        super().__init__("graph contains a cycle among nodes: %r" % (self.nodes,))


def topological_sort(nodes: Iterable[N], edges: Dict[N, Set[N]]) -> List[N]:
    """Kahn's algorithm; stable with respect to the input node order.

    ``edges[u]`` is the set of successors of ``u``.  Raises :class:`CycleError`
    if the graph is cyclic.  Ties are broken by the position of the node in
    ``nodes`` so that the output order is deterministic and respects the
    original statement order where dependences allow.
    """
    import heapq

    order = {node: i for i, node in enumerate(nodes)}
    indegree = {node: 0 for node in order}
    for u, succs in edges.items():
        for v in succs:
            if v in indegree:
                indegree[v] += 1

    heap = [order[node] for node, deg in indegree.items() if deg == 0]
    heapq.heapify(heap)
    by_index = {i: node for node, i in order.items()}
    result: List[N] = []
    while heap:
        node = by_index[heapq.heappop(heap)]
        result.append(node)
        for succ in edges.get(node, ()):
            if succ not in indegree:
                continue
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(heap, order[succ])
    if len(result) != len(indegree):
        done = set(result)
        raise CycleError(n for n in order if n not in done)
    return result


def reachable_from(start: Iterable[N], edges: Dict[N, Set[N]]) -> Set[N]:
    """All nodes reachable from any node in ``start`` (excluding trivial self)."""
    seen: Set[N] = set()
    stack = list(start)
    while stack:
        node = stack.pop()
        for succ in edges.get(node, ()):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def reverse_edges(edges: Dict[N, Set[N]]) -> Dict[N, Set[N]]:
    """The transpose graph."""
    rev: Dict[N, Set[N]] = {}
    for u, succs in edges.items():
        rev.setdefault(u, set())
        for v in succs:
            rev.setdefault(v, set()).add(u)
    return rev


def has_cycle(nodes: Iterable[N], edges: Dict[N, Set[N]]) -> bool:
    """True iff the graph restricted to ``nodes`` contains a cycle."""
    try:
        topological_sort(list(nodes), edges)
    except CycleError:
        return True
    return False


def on_paths_between(
    sources: Set[N], targets: Set[N], edges: Dict[N, Set[N]]
) -> Set[N]:
    """Nodes lying on some path from a source to a target.

    Returns nodes that are reachable from ``sources`` AND can reach
    ``targets`` — exactly the nodes the paper's GROW function must absorb to
    avoid inter-cluster cycles.
    """
    forward = reachable_from(sources, edges) | set(sources)
    backward = reachable_from(targets, reverse_edges(edges)) | set(targets)
    return forward & backward
