"""Plain-text table rendering for the experiment harnesses.

Every figure/table reproduction prints its rows through this module so that
``EXPERIMENTS.md`` and the benchmark output share one format.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_cell(value: object) -> str:
    """Render a single cell: floats get 1 decimal place, None becomes 'na'."""
    if value is None:
        return "na"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return "%.1f" % value
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table with a header rule."""
    str_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                "row has %d cells, expected %d: %r" % (len(row), len(headers), row)
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)


def percent(before: float, after: float) -> float:
    """Percent change from ``before`` to ``after``: 100 * (after-before)/before."""
    if before == 0:
        raise ValueError("percent change from zero is undefined")
    return 100.0 * (after - before) / before


def improvement_over(baseline: float, optimized: float) -> float:
    """Percent improvement of ``optimized`` over ``baseline``.

    Positive numbers mean the optimized version is faster, matching the bars
    in Figures 9-11 (``100 * (t_base - t_opt) / t_opt``: a 400% improvement
    means the baseline takes 5x as long).
    """
    if optimized <= 0:
        raise ValueError("optimized time must be positive, got %r" % optimized)
    return 100.0 * (baseline - optimized) / optimized
