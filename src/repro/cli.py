"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``compile FILE``
    Run the array-level pipeline and emit one of: the normalized IR, the
    per-block dependence graphs, the fusion/contraction plan, generated C,
    or generated Python.

``run FILE``
    Compile and execute on a selectable back end (``--backend interp``,
    ``codegen_py`` or ``codegen_np``); print final scalars.

``estimate FILE``
    Compile and estimate execution cost on a machine model, optionally for
    ``p`` processors with scaled problem sizes.

``serve FILE``
    Compile once through the content-addressed artifact cache and execute
    a batch of requests (``--requests requests.json``, optionally across
    ``--workers`` threads); ``--stats`` prints the pipeline metrics JSON.
    With ``--daemon``, run a long-lived serving daemon instead: HTTP
    front end, bounded admission, multiprocessing worker pool with
    zero-copy shared-memory array transport (see ``repro.daemon``);
    ``GET /metrics`` serves the same Prometheus exposition that
    ``repro stats --format=prom`` emits as its scrape-file twin.

``tune FILE``
    Search serving plans (level x backend x workers x tile shape) under a
    wall-clock budget, print the predicted-vs-measured ranking table, and
    persist the winner in the tuning database for ``serve --tune``.

``trace FILE``
    Compile and execute once with structured tracing on, then print the
    span tree (compile passes, cache probe, execution, per-tile sweeps);
    ``--out trace.json`` writes Chrome trace-event JSON loadable in
    Perfetto (https://ui.perfetto.dev).

``backends``
    List the registered execution back ends: canonical name, accepted
    aliases, option hints, and description.

``stats``
    Inspect the on-disk artifact cache: entries, sizes, levels, backends.
    ``--format=json`` (default) or ``--format=prom`` (Prometheus text).

``figures NAME``
    Regenerate a paper artifact (fig6, fig7, fig8) on the spot.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.deps import build_asdg
from repro.exec import ALIASES, BACKEND_CHOICES, execute, get_backend
from repro.fusion import LEVELS_BY_NAME, C2P, plan_program
from repro.ir import normalize_source
from repro.machine import MACHINES_BY_NAME, estimate_sequential
from repro.parallel import estimate_parallel
from repro.scalarize import (
    render_c_module,
    render_numpy,
    render_python,
    scalarize,
)
from repro.util.errors import ReproError

_MACHINE_ALIASES = {
    "t3e": "Cray T3E",
    "sp2": "IBM SP-2",
    "paragon": "Intel Paragon",
}

_ALL_LEVEL_NAMES = sorted(set(LEVELS_BY_NAME) | {C2P.name})


def _level(name: str):
    if name == C2P.name:
        return C2P
    level = LEVELS_BY_NAME.get(name)
    if level is None:
        raise SystemExit(
            "unknown level %r (choose from %s)" % (name, ", ".join(_ALL_LEVEL_NAMES))
        )
    return level


def _parse_config(pairs: Optional[List[str]]) -> Dict[str, int]:
    config: Dict[str, int] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit("--config expects name=value, got %r" % pair)
        name, _eq, value = pair.partition("=")
        try:
            config[name.strip()] = int(value)
        except ValueError:
            config[name.strip()] = float(value)  # type: ignore[assignment]
    return config


def _backend_name(name: str) -> str:
    """Resolve a --backend value (canonical name or alias) for argparse."""
    try:
        return get_backend(name).name
    except ReproError as error:
        raise argparse.ArgumentTypeError(str(error))


def _positive_int(text: str):
    """Validate count arguments (``--workers``) at parse time, so a bad
    value is a clean usage error instead of a deep planner failure."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError("expected an integer, got %r" % text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            "expected a positive integer, got %d" % value
        )
    return value


def _port(text: str):
    """Validate --port: a real bindable port, with 0 rejected explicitly.

    Port 0 asks the kernel for an ephemeral port — fine for tests using
    the library API, but useless for an operator-facing flag: the daemon
    would come up on an address nobody knows.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError("expected an integer, got %r" % text)
    if value == 0:
        raise argparse.ArgumentTypeError(
            "port 0 (ephemeral) is not allowed: pass a fixed port in "
            "1..65535 so clients know where the daemon listens"
        )
    if not 1 <= value <= 65535:
        raise argparse.ArgumentTypeError(
            "expected a port in 1..65535, got %d" % value
        )
    return value


def _tile_shape(text: str):
    """Parse and validate a --tile-shape value (``N`` or ``NxM``)."""
    from repro.parallel.tiling import parse_tile_shape

    try:
        return parse_tile_shape(text)
    except ReproError as error:
        raise argparse.ArgumentTypeError(str(error))


def _add_backend_argument(parser, default: str) -> None:
    parser.add_argument(
        "--backend", default=default, type=_backend_name,
        metavar="{%s}" % ",".join(BACKEND_CHOICES),
        help="execution back end (case-insensitive; aliases: %s): loop "
        "interpreter, generated Python element loops, generated "
        "whole-region NumPy, tile-parallel NumPy sweeps, "
        "host-compiled C (needs a C compiler), or multi-process "
        "sharding with modeled halo exchanges"
        % ", ".join("%s=%s" % pair for pair in sorted(ALIASES.items())),
    )


def _load(args) -> str:
    if args.file == "-":
        return sys.stdin.read()
    with open(args.file) as handle:
        return handle.read()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Array-level fusion and contraction (PLDI 1998 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("file", help="mini-ZPL source file, or - for stdin")
        p.add_argument("--level", default="c2", help="optimization level "
                       "(%s)" % ", ".join(_ALL_LEVEL_NAMES))
        p.add_argument("--config", action="append", metavar="NAME=VALUE",
                       help="override a config constant (repeatable)")
        p.add_argument("--self-temp-policy", default="always",
                       choices=("always", "zero_offset", "reversal"))
        p.add_argument("--simplify", action="store_true",
                       help="run constant folding before planning")

    compile_parser = sub.add_parser("compile", help="compile and emit")
    common(compile_parser)
    compile_parser.add_argument(
        "--emit",
        default="c",
        choices=("ir", "asdg", "plan", "c", "py", "np"),
        help="what to print (default: generated C)",
    )

    run_parser = sub.add_parser("run", help="compile and execute")
    common(run_parser)
    _add_backend_argument(run_parser, default="interp")
    run_parser.add_argument(
        "--check", action="store_true",
        help="cross-execute against the interp backend and report the "
        "max absolute divergence",
    )
    run_parser.add_argument(
        "--workers", type=_positive_int, default=None, metavar="N",
        help="tile-engine worker threads (np-par backend only; default: "
        "$REPRO_WORKERS or the processor count)",
    )
    run_parser.add_argument(
        "--tile-shape", type=_tile_shape, default=None, metavar="N|NxM",
        help="force the tile shape for np-par sweeps (e.g. 32 or 32x1600; "
        "default: $REPRO_TILE_SHAPE or balanced factorization)",
    )
    run_parser.add_argument(
        "--procs", type=_positive_int, default=None, metavar="N",
        help="worker processes (mp-shard backend only; default: "
        "$REPRO_PROCS or up to 4)",
    )
    run_parser.add_argument(
        "--local-backend", default=None, metavar="NAME",
        help="per-shard backend for mp-shard workers (default codegen_np)",
    )

    estimate_parser = sub.add_parser("estimate", help="estimate cost")
    common(estimate_parser)
    estimate_parser.add_argument(
        "--machine", default="t3e", choices=sorted(_MACHINE_ALIASES),
    )
    estimate_parser.add_argument("--p", type=int, default=1,
                                 help="processor count (scaled problem)")

    serve_parser = sub.add_parser(
        "serve", help="compile once (cached), execute many requests"
    )
    common(serve_parser)
    _add_backend_argument(serve_parser, default="codegen_np")
    serve_parser.add_argument(
        "--requests", metavar="FILE",
        help="JSON file (or - for stdin) holding a list of requests, each "
        'an object like {"config": {"n": 512}}; default: one request '
        "with no overrides",
    )
    serve_parser.add_argument(
        "--workers", type=_positive_int, default=None,
        help="fan request execution out across N threads (also sizes the "
        "np-par backend's tile-engine pool)",
    )
    serve_parser.add_argument(
        "--tile-shape", type=_tile_shape, default=None, metavar="N|NxM",
        help="force the tile shape for np-par sweeps (e.g. 32 or 32x1600)",
    )
    serve_parser.add_argument(
        "--tune", action="store_true",
        help="consult the tuning database and serve each program under "
        "its stored winning plan (run 'repro tune' first)",
    )
    serve_parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="serve the request list N times (traffic simulation)",
    )
    serve_parser.add_argument(
        "--cache-dir", default=None,
        help="artifact cache directory (default: $REPRO_CACHE_DIR or "
        ".repro-cache)",
    )
    serve_parser.add_argument(
        "--no-cache", action="store_true",
        help="keep artifacts in memory only; skip the on-disk store",
    )
    serve_parser.add_argument(
        "--stats", action="store_true",
        help="print metrics and cache stats as JSON after serving",
    )
    serve_parser.add_argument(
        "--stats-json", metavar="PATH",
        help="also write the stats JSON to PATH",
    )
    serve_parser.add_argument(
        "--trace-dir", metavar="DIR",
        help="enable structured tracing and write a Chrome trace-event "
        "JSON (Perfetto-loadable) per serve run into DIR; $REPRO_TRACE "
        "also enables tracing (tree to stderr, or a .json path)",
    )
    serve_parser.add_argument(
        "--daemon", action="store_true",
        help="run as a serving daemon: HTTP front end with bounded "
        "admission and a multiprocessing worker pool (arrays travel "
        "zero-copy via shared memory); FILE is ignored — clients POST "
        "programs to /execute.  SIGTERM drains in-flight requests",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="daemon bind address (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=_port, default=7341, metavar="PORT",
        help="daemon listen port in 1..65535; port 0 is rejected "
        "(default: 7341)",
    )
    serve_parser.add_argument(
        "--daemon-workers", type=_positive_int, default=2, metavar="N",
        help="worker processes in the daemon pool (default: 2)",
    )
    serve_parser.add_argument(
        "--queue-depth", type=_positive_int, default=64, metavar="N",
        help="admission-queue bound; requests beyond it are shed with "
        "503 (default: 64)",
    )
    serve_parser.add_argument(
        "--batch-max", type=_positive_int, default=8, metavar="N",
        help="max same-digest requests dispatched to a worker as one "
        "batch (default: 8)",
    )
    serve_parser.add_argument(
        "--max-request-mb", type=_positive_int, default=64, metavar="MB",
        help="reject requests whose arrays exceed MB megabytes with 413 "
        "(default: 64)",
    )

    trace_parser = sub.add_parser(
        "trace", help="compile + execute once with tracing, print span tree"
    )
    common(trace_parser)
    _add_backend_argument(trace_parser, default="codegen_np")
    trace_parser.add_argument(
        "--workers", type=_positive_int, default=None, metavar="N",
        help="tile-engine worker threads (np-par backend only)",
    )
    trace_parser.add_argument(
        "--tile-shape", type=_tile_shape, default=None, metavar="N|NxM",
        help="force the tile shape for np-par sweeps",
    )
    trace_parser.add_argument(
        "--out", metavar="PATH",
        help="also write Chrome trace-event JSON to PATH "
        "(open in https://ui.perfetto.dev)",
    )

    tune_parser = sub.add_parser(
        "tune", help="search serving plans, persist the winner"
    )
    common(tune_parser)
    _add_backend_argument(tune_parser, default="codegen_np")
    tune_parser.add_argument(
        "--budget-s", type=float, default=20.0, metavar="SECONDS",
        help="wall-clock measurement budget (default: 20)",
    )
    tune_parser.add_argument(
        "--top-k", type=_positive_int, default=6, metavar="K",
        help="measure only the K best plans by predicted cost (default: 6)",
    )
    tune_parser.add_argument(
        "--repeats", type=_positive_int, default=3, metavar="N",
        help="timed repeats per candidate; the median is kept (default: 3)",
    )
    tune_parser.add_argument(
        "--warmup", type=int, default=1, metavar="N",
        help="untimed warmup runs per candidate (default: 1)",
    )
    tune_parser.add_argument(
        "--force", action="store_true",
        help="re-measure even if the tuning database already has a winner",
    )
    tune_parser.add_argument(
        "--no-save", action="store_true",
        help="do not persist the winning plan to the tuning database",
    )
    tune_parser.add_argument(
        "--cache-dir", default=None,
        help="cache root holding the tunedb (default: $REPRO_CACHE_DIR "
        "or .repro-cache)",
    )

    sub.add_parser(
        "backends",
        help="list registered execution back ends with aliases and options",
    )

    stats_parser = sub.add_parser(
        "stats", help="inspect the on-disk artifact cache"
    )
    stats_parser.add_argument(
        "--cache-dir", default=None,
        help="artifact cache directory (default: $REPRO_CACHE_DIR or "
        ".repro-cache)",
    )
    stats_parser.add_argument(
        "--format", default="json", metavar="{json,prom}",
        help="output format: json (machine-readable stats + artifact "
        "inventory) or prom (Prometheus text exposition)",
    )

    figures_parser = sub.add_parser("figures", help="regenerate an artifact")
    figures_parser.add_argument("name", choices=("fig6", "fig7", "fig8"))
    return parser


def _compile(args):
    source = _load(args)
    program = normalize_source(
        source, _parse_config(args.config), args.self_temp_policy
    )
    if args.simplify:
        from repro.ir import simplify_program

        simplify_program(program)
    plan = plan_program(program, _level(args.level))
    return program, plan


def cmd_compile(args) -> int:
    program, plan = _compile(args)
    if args.emit == "ir":
        print(program.render())
        return 0
    if args.emit == "asdg":
        for block in program.blocks():
            print(build_asdg(block).render())
            print()
        return 0
    if args.emit == "plan":
        for block_plan in plan.block_plans.values():
            print(block_plan.partition.render())
            print("contracted:", sorted(block_plan.contracted))
            if block_plan.partial:
                print("row buffers:", block_plan.partial)
            print()
        print("surviving arrays:", sorted(plan.live_arrays()))
        stats = plan.cse_stats()
        if stats is not None:
            print(
                "cse: %d hoisted / %d uses (%d ops/point saved, "
                "%d shifted classes seen)"
                % (
                    stats.terms_hoisted,
                    stats.uses_replaced,
                    stats.saved_ops_per_point,
                    stats.shifted_classes,
                )
            )
        return 0
    scalar_program = scalarize(program, plan)
    if args.emit == "c":
        # The exact translation unit the c backend compiles: extern
        # repro_run entry point over caller-owned buffers.  render_c
        # (static storage + <prog>_main) stays available as a library
        # call for self-contained inspection.
        print(render_c_module(scalar_program), end="")
    elif args.emit == "np":
        print(render_numpy(scalar_program), end="")
    else:
        print(render_python(scalar_program), end="")
    return 0


def _print_scalars(scalars: Dict[str, object], prefix: str = "") -> None:
    for name in sorted(scalars):
        if name.startswith("_") or name.endswith("__s"):
            continue
        value = scalars[name]
        if isinstance(value, bool):
            text = str(value)
        elif float(value) == int(value):
            text = "%g" % float(value)
        else:
            text = repr(float(value))
        print("%s%s = %s" % (prefix, name, text))


#: --check fails when the fast path diverges from the interpreter by more.
CHECK_TOLERANCE = 1e-6


def _max_divergence(result, reference) -> float:
    """Max absolute element-wise difference between two execution results."""
    import numpy as np

    worst = 0.0
    for name, array in reference.arrays.items():
        other = result.arrays.get(name)
        if other is None or other.shape != array.shape:
            return float("inf")
        if array.size:
            worst = max(
                worst,
                float(
                    np.max(
                        np.abs(
                            np.asarray(other, dtype=np.float64)
                            - np.asarray(array, dtype=np.float64)
                        )
                    )
                ),
            )
    for name, value in reference.scalars.items():
        if name not in result.scalars:
            return float("inf")
        worst = max(worst, abs(float(result.scalars[name]) - float(value)))
    return worst


def cmd_run(args) -> int:
    program, plan = _compile(args)
    scalar_program = scalarize(program, plan)
    options = {}
    for flag, value in (("workers", args.workers), ("tile_shape", args.tile_shape)):
        if value is not None:
            if args.backend != "np-par":
                raise SystemExit(
                    "--%s only applies to the np-par backend "
                    "(got --backend %s)" % (flag.replace("_", "-"), args.backend)
                )
            options[flag] = value
    for flag, value in (("procs", args.procs),
                        ("local_backend", args.local_backend)):
        if value is not None:
            if args.backend != "mp-shard":
                raise SystemExit(
                    "--%s only applies to the mp-shard backend "
                    "(got --backend %s)"
                    % (flag.replace("_", "-"), args.backend)
                )
            options[flag] = value
    result = execute(scalar_program, args.backend, **options)
    _print_scalars(result.scalars)
    if args.check:
        if args.backend == "interp":
            print("check vs interp: backend is interp, divergence = 0")
            return 0
        reference = execute(scalar_program, "interp")
        divergence = _max_divergence(result, reference)
        print("check vs interp: max |divergence| = %g" % divergence)
        if not divergence <= CHECK_TOLERANCE:
            print(
                "error: backend %r diverges from interp by %g (tolerance %g)"
                % (args.backend, divergence, CHECK_TOLERANCE),
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_estimate(args) -> int:
    program, plan = _compile(args)
    scalar_program = scalarize(program, plan)
    machine = MACHINES_BY_NAME[_MACHINE_ALIASES[args.machine]]
    if args.p > 1:
        cost = estimate_parallel(scalar_program, machine, args.p)
    else:
        cost = estimate_sequential(scalar_program, machine)
    print("machine        : %s" % machine.name)
    print("level          : %s" % args.level)
    print("processors     : %d" % args.p)
    print("arrays         : %d" % scalar_program.array_count())
    print("cycles         : %.0f" % cost.cycles)
    print("compute (us)   : %.1f" % cost.compute_microseconds)
    print("comm (us)      : %.1f" % cost.comm_microseconds)
    print("total (us)     : %.1f" % cost.microseconds)
    counts = cost.counts
    for index, misses in enumerate(counts.misses):
        print("L%d misses      : %.0f" % (index + 1, misses))
    print("loads / stores : %.0f / %.0f" % (counts.loads, counts.stores))
    return 0


def _load_requests(path: Optional[str]):
    import json

    if not path:
        return [None]
    if path == "-":
        raw = sys.stdin.read()
    else:
        with open(path) as handle:
            raw = handle.read()
    data = json.loads(raw)
    if isinstance(data, dict) and "requests" in data:
        data = data["requests"]
    if not isinstance(data, list):
        raise ReproError(
            "--requests expects a JSON list of request objects "
            '(each like {"config": {"n": 512}})'
        )
    return [request if request else None for request in data]


def cmd_serve_daemon(args) -> int:
    """``repro serve --daemon``: serve until SIGTERM/SIGINT, then drain."""
    import signal
    import threading

    from repro.daemon import Daemon, DaemonConfig

    config = DaemonConfig(
        level=args.level,
        backend=args.backend,
        workers=args.daemon_workers,
        queue_depth=args.queue_depth,
        batch_max=args.batch_max,
        max_request_bytes=args.max_request_mb * 1024 * 1024,
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        persistent=not args.no_cache,
    )
    _level(args.level)  # fail fast on a bad level name
    daemon = Daemon(config, trace=True if args.trace_dir else None)
    stop_event = threading.Event()

    def _signal(signum, frame):
        stop_event.set()

    signal.signal(signal.SIGTERM, _signal)
    signal.signal(signal.SIGINT, _signal)
    daemon.start()
    print(
        "daemon listening on %s:%d  workers=%d queue-depth=%d "
        "level=%s backend=%s"
        % (
            config.host,
            daemon.port,
            config.workers,
            config.queue_depth,
            config.level,
            config.backend,
        ),
        flush=True,
    )
    stop_event.wait()
    print("draining...", flush=True)
    daemon.stop(drain=True)
    counters = daemon.metrics.snapshot()["counters"]
    print(
        "drained: %d requests, %d shed, %d worker restarts"
        % (
            counters.get("daemon.requests", 0),
            counters.get("daemon.shed", 0),
            counters.get("daemon.worker_restarts", 0),
        ),
        flush=True,
    )
    return 0


def cmd_serve(args) -> int:
    import json

    from repro.service import Service

    if args.daemon:
        return cmd_serve_daemon(args)
    source = _load(args)
    level = _level(args.level)
    service = Service(
        level=level,
        backend=args.backend,
        cache_dir=args.cache_dir,
        persistent=not args.no_cache,
        workers=args.workers,
        tile_shape=args.tile_shape,
        tune=args.tune,
        self_temp_policy=args.self_temp_policy,
        simplify=args.simplify,
        # --trace-dir forces tracing on; otherwise $REPRO_TRACE decides.
        trace=True if args.trace_dir else None,
    )
    base_config = _parse_config(args.config)
    requests = _load_requests(args.requests)
    compiled = service.compile(source, level, base_config)
    print(
        "compiled %s  level=%s backend=%s  %s%s"
        % (
            compiled.digest[:12],
            compiled.level,
            compiled.backend,
            "cache hit" if compiled.from_cache else "cache miss (cold compile)",
            "  plan=%s (tuned)" % compiled.plan_id
            if compiled.plan.get("tuned")
            else "",
        )
    )
    for round_index in range(max(args.repeat, 1)):
        results = service.submit_many(source, requests, config=base_config)
        if round_index > 0:
            continue  # print each distinct request's answer once
        for index, result in enumerate(results):
            _print_scalars(result.scalars, prefix="request %d: " % index)
    if args.stats or args.stats_json:
        stats = service.stats()
        text = json.dumps(stats, indent=2, sort_keys=True)
        if args.stats:
            print(text)
        if args.stats_json:
            with open(args.stats_json, "w") as handle:
                handle.write(text + "\n")
    _emit_serve_trace(service, compiled, args.trace_dir)
    return 0


def _emit_serve_trace(service, compiled, trace_dir: Optional[str]) -> None:
    """Export the serve run's spans per --trace-dir / $REPRO_TRACE.

    ``--trace-dir DIR`` writes one Chrome trace per run, named by the
    compiled digest.  Without it, a truthy ``$REPRO_TRACE`` prints the
    span tree to stderr — unless its value names a ``.json`` path, which
    gets the Chrome trace instead.
    """
    tracer = service.tracer
    if not tracer.enabled:
        return
    import os

    from repro.obs import env_trace_value, render_tree, write_chrome_trace

    spans = tracer.spans()
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
        path = os.path.join(trace_dir, "serve-%s.json" % compiled.digest[:12])
        write_chrome_trace(spans, path)
        print("trace: %d spans -> %s" % (len(spans), path))
        return
    value = env_trace_value()
    if value.endswith(".json") or os.sep in value:
        write_chrome_trace(spans, value)
        print("trace: %d spans -> %s" % (len(spans), value))
    else:
        print(render_tree(spans), file=sys.stderr)


def cmd_tune(args) -> int:
    from repro.service import Metrics
    from repro.service.cache import default_cache_dir
    from repro.tune import TuneDB, default_space, tune

    source = _load(args)
    level = _level(args.level)
    root = args.cache_dir or default_cache_dir()
    import os

    metrics = Metrics()
    db = TuneDB(root=os.path.join(root, "tunedb"), metrics=metrics)
    space = default_space(level=level.name, backend=args.backend)
    result = tune(
        source,
        config=_parse_config(args.config),
        level=level.name,
        backend=args.backend,
        space=space,
        top_k=args.top_k,
        budget_s=args.budget_s,
        repeats=args.repeats,
        warmup=args.warmup,
        db=db,
        force=args.force,
        save=not args.no_save,
        metrics=metrics,
        self_temp_policy=args.self_temp_policy,
        simplify=args.simplify,
    )
    print(result.render_table())
    return 0


def cmd_trace(args) -> int:
    """Compile and execute once with tracing, print/export the spans."""
    from repro.obs import render_tree, write_chrome_trace
    from repro.service import Service

    source = _load(args)
    level = _level(args.level)
    # persistent=False: a trace should show the full pipeline, not a
    # disk-cache replay from an earlier invocation.
    service = Service(
        level=level,
        backend=args.backend,
        persistent=False,
        workers=args.workers,
        tile_shape=args.tile_shape,
        self_temp_policy=args.self_temp_policy,
        simplify=args.simplify,
        trace=True,
    )
    compiled = service.compile(source, level, _parse_config(args.config))
    compiled.execute()
    spans = service.tracer.spans()
    print(render_tree(spans))
    if args.out:
        write_chrome_trace(spans, args.out)
        print()
        print(
            "trace: %d spans -> %s (open in https://ui.perfetto.dev)"
            % (len(spans), args.out)
        )
    return 0


#: Formats ``repro stats`` can emit; unknown values are a usage error
#: with a nonzero exit (through the ReproError path).
STATS_FORMATS = ("json", "prom")


def cmd_backends(args) -> int:
    """List the execution-backend registry as an aligned table."""
    from repro.exec import BACKENDS, aliases_of
    from repro.exec.native import cc_available, find_cc
    from repro.util.tables import render_table

    rows = []
    for name in sorted(BACKENDS):
        backend = BACKENDS[name]
        if name == "c":
            available = "yes (%s)" % find_cc() if cc_available() else "no (no cc)"
        else:
            available = "yes"
        rows.append(
            (
                backend.name,
                ", ".join(aliases_of(name)) or "-",
                available,
                backend.options or "-",
                backend.description,
            )
        )
    print(
        render_table(
            ("backend", "aliases", "available", "options", "description"), rows
        )
    )
    return 0


def cmd_stats(args) -> int:
    import json
    import pickle
    import time

    from repro.service import ArtifactCache

    if args.format not in STATS_FORMATS:
        raise ReproError(
            "unknown stats format %r (choose from %s)"
            % (args.format, ", ".join(STATS_FORMATS))
        )
    cache = ArtifactCache(root=args.cache_dir)
    if args.format == "prom":
        from repro.obs import render_prometheus
        from repro.obs.registry import registered_counter_names
        from repro.service import Metrics

        # A fresh process has no traffic, but the scrape must still
        # carry every registered counter at zero (dashboards alert on
        # absent series, not on zeros).
        zeroes = Metrics()
        zeroes.register(registered_counter_names())
        print(
            render_prometheus(
                metrics_snapshot=zeroes.snapshot(),
                cache_stats=cache.stats(),
            ),
            end="",
        )
        return 0
    artifacts = []
    now = time.time()
    for path, size, mtime in cache.disk_entries():
        entry = {"path": path, "bytes": size, "age_s": round(now - mtime, 1)}
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
            payload = envelope.get("payload", {})
            entry.update(
                {
                    "digest": envelope.get("digest", "")[:12],
                    "level": payload.get("level"),
                    "backend": payload.get("backend"),
                    "config": payload.get("config"),
                    "code_version": envelope.get("code_version"),
                }
            )
        except Exception:
            entry["invalid"] = True
        artifacts.append(entry)
    print(
        json.dumps(
            {"cache": cache.stats(), "artifacts": artifacts},
            indent=2,
            sort_keys=True,
        )
    )
    return 0


def cmd_figures(args) -> int:
    if args.name == "fig6":
        from repro.compilers import render_figure6

        print(render_figure6())
    elif args.name == "fig7":
        from repro.eval import render_figure7

        print(render_figure7())
    else:
        from repro.eval import render_figure8

        print(render_figure8())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    handler = {
        "compile": cmd_compile,
        "run": cmd_run,
        "estimate": cmd_estimate,
        "serve": cmd_serve,
        "tune": cmd_tune,
        "trace": cmd_trace,
        "backends": cmd_backends,
        "stats": cmd_stats,
        "figures": cmd_figures,
    }[args.command]
    try:
        return handler(args)
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    except BrokenPipeError:
        return 0  # output piped to a closed reader (e.g. | head)


if __name__ == "__main__":
    raise SystemExit(main())
