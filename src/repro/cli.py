"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``compile FILE``
    Run the array-level pipeline and emit one of: the normalized IR, the
    per-block dependence graphs, the fusion/contraction plan, generated C,
    or generated Python.

``run FILE``
    Compile and execute on a selectable back end (``--backend interp``,
    ``codegen_py`` or ``codegen_np``); print final scalars.

``estimate FILE``
    Compile and estimate execution cost on a machine model, optionally for
    ``p`` processors with scaled problem sizes.

``figures NAME``
    Regenerate a paper artifact (fig6, fig7, fig8) on the spot.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.deps import build_asdg
from repro.exec import BACKEND_CHOICES, execute
from repro.fusion import LEVELS_BY_NAME, C2P, plan_program
from repro.ir import normalize_source
from repro.machine import MACHINES_BY_NAME, estimate_sequential
from repro.parallel import estimate_parallel
from repro.scalarize import render_c, render_numpy, render_python, scalarize
from repro.util.errors import ReproError

_MACHINE_ALIASES = {
    "t3e": "Cray T3E",
    "sp2": "IBM SP-2",
    "paragon": "Intel Paragon",
}

_ALL_LEVEL_NAMES = sorted(set(LEVELS_BY_NAME) | {C2P.name})


def _level(name: str):
    if name == C2P.name:
        return C2P
    level = LEVELS_BY_NAME.get(name)
    if level is None:
        raise SystemExit(
            "unknown level %r (choose from %s)" % (name, ", ".join(_ALL_LEVEL_NAMES))
        )
    return level


def _parse_config(pairs: Optional[List[str]]) -> Dict[str, int]:
    config: Dict[str, int] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit("--config expects name=value, got %r" % pair)
        name, _eq, value = pair.partition("=")
        try:
            config[name.strip()] = int(value)
        except ValueError:
            config[name.strip()] = float(value)  # type: ignore[assignment]
    return config


def _load(args) -> str:
    if args.file == "-":
        return sys.stdin.read()
    with open(args.file) as handle:
        return handle.read()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Array-level fusion and contraction (PLDI 1998 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("file", help="mini-ZPL source file, or - for stdin")
        p.add_argument("--level", default="c2", help="optimization level "
                       "(%s)" % ", ".join(_ALL_LEVEL_NAMES))
        p.add_argument("--config", action="append", metavar="NAME=VALUE",
                       help="override a config constant (repeatable)")
        p.add_argument("--self-temp-policy", default="always",
                       choices=("always", "zero_offset", "reversal"))
        p.add_argument("--simplify", action="store_true",
                       help="run constant folding before planning")

    compile_parser = sub.add_parser("compile", help="compile and emit")
    common(compile_parser)
    compile_parser.add_argument(
        "--emit",
        default="c",
        choices=("ir", "asdg", "plan", "c", "py", "np"),
        help="what to print (default: generated C)",
    )

    run_parser = sub.add_parser("run", help="compile and execute")
    common(run_parser)
    run_parser.add_argument(
        "--backend", default="interp", choices=BACKEND_CHOICES,
        help="execution back end: loop interpreter, generated Python "
        "element loops, or generated whole-region NumPy",
    )

    estimate_parser = sub.add_parser("estimate", help="estimate cost")
    common(estimate_parser)
    estimate_parser.add_argument(
        "--machine", default="t3e", choices=sorted(_MACHINE_ALIASES),
    )
    estimate_parser.add_argument("--p", type=int, default=1,
                                 help="processor count (scaled problem)")

    figures_parser = sub.add_parser("figures", help="regenerate an artifact")
    figures_parser.add_argument("name", choices=("fig6", "fig7", "fig8"))
    return parser


def _compile(args):
    source = _load(args)
    program = normalize_source(
        source, _parse_config(args.config), args.self_temp_policy
    )
    if args.simplify:
        from repro.ir import simplify_program

        simplify_program(program)
    plan = plan_program(program, _level(args.level))
    return program, plan


def cmd_compile(args) -> int:
    program, plan = _compile(args)
    if args.emit == "ir":
        print(program.render())
        return 0
    if args.emit == "asdg":
        for block in program.blocks():
            print(build_asdg(block).render())
            print()
        return 0
    if args.emit == "plan":
        for block_plan in plan.block_plans.values():
            print(block_plan.partition.render())
            print("contracted:", sorted(block_plan.contracted))
            if block_plan.partial:
                print("row buffers:", block_plan.partial)
            print()
        print("surviving arrays:", sorted(plan.live_arrays()))
        return 0
    scalar_program = scalarize(program, plan)
    if args.emit == "c":
        print(render_c(scalar_program), end="")
    elif args.emit == "np":
        print(render_numpy(scalar_program), end="")
    else:
        print(render_python(scalar_program), end="")
    return 0


def cmd_run(args) -> int:
    program, plan = _compile(args)
    scalar_program = scalarize(program, plan)
    scalars = execute(scalar_program, args.backend).scalars
    for name in sorted(scalars):
        if name.startswith("_") or name.endswith("__s"):
            continue
        value = scalars[name]
        if isinstance(value, bool):
            text = str(value)
        elif float(value) == int(value):
            text = "%g" % float(value)
        else:
            text = repr(float(value))
        print("%s = %s" % (name, text))
    return 0


def cmd_estimate(args) -> int:
    program, plan = _compile(args)
    scalar_program = scalarize(program, plan)
    machine = MACHINES_BY_NAME[_MACHINE_ALIASES[args.machine]]
    if args.p > 1:
        cost = estimate_parallel(scalar_program, machine, args.p)
    else:
        cost = estimate_sequential(scalar_program, machine)
    print("machine        : %s" % machine.name)
    print("level          : %s" % args.level)
    print("processors     : %d" % args.p)
    print("arrays         : %d" % scalar_program.array_count())
    print("cycles         : %.0f" % cost.cycles)
    print("compute (us)   : %.1f" % cost.compute_microseconds)
    print("comm (us)      : %.1f" % cost.comm_microseconds)
    print("total (us)     : %.1f" % cost.microseconds)
    counts = cost.counts
    for index, misses in enumerate(counts.misses):
        print("L%d misses      : %.0f" % (index + 1, misses))
    print("loads / stores : %.0f / %.0f" % (counts.loads, counts.stores))
    return 0


def cmd_figures(args) -> int:
    if args.name == "fig6":
        from repro.compilers import render_figure6

        print(render_figure6())
    elif args.name == "fig7":
        from repro.eval import render_figure7

        print(render_figure7())
    else:
        from repro.eval import render_figure8

        print(render_figure8())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    handler = {
        "compile": cmd_compile,
        "run": cmd_run,
        "estimate": cmd_estimate,
        "figures": cmd_figures,
    }[args.command]
    try:
        return handler(args)
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    except BrokenPipeError:
        return 0  # output piped to a closed reader (e.g. | head)


if __name__ == "__main__":
    raise SystemExit(main())
