"""repro — array-level statement fusion and array contraction.

A reproduction of Lewis, Lin & Snyder, "The Implementation and Evaluation
of Fusion and Contraction in Array Languages" (PLDI 1998).

The high-level pipeline::

    from repro import compile_source, C2

    scalar_program, plan = compile_source(source, level=C2)

See README.md for the full tour; the subpackages are:

``repro.lang``       the mini-ZPL front end
``repro.ir``         normal-form IR and normalization
``repro.deps``       UDVs and the array statement dependence graph
``repro.fusion``     fusion partitions, contraction, optimization levels
``repro.scalarize``  loop nests, contraction rewriting, C/Python codegen
``repro.interp``     reference and scalarized interpreters
``repro.machine``    cache simulation and machine models
``repro.parallel``   distribution, communication, interaction policies
``repro.compilers``  commercial-compiler personalities (Figure 6)
``repro.benchsuite`` the six application benchmarks
``repro.eval``       experiment harnesses for every table and figure
"""

from typing import Mapping, Optional, Tuple

from repro.fusion import (
    ALL_LEVELS,
    BASELINE,
    C1,
    C2,
    C2F3,
    C2F4,
    C2P,
    F1,
    F2,
    F3,
    LEVELS_BY_NAME,
    Level,
    ProgramPlan,
    plan_program,
)
from repro.ir import IRProgram, normalize_source
from repro.scalarize import ScalarProgram, render_c, render_python, scalarize

__version__ = "1.0.0"


def compile_source(
    source: str,
    level: Level = C2,
    config: Optional[Mapping[str, object]] = None,
    self_temp_policy: str = "always",
) -> Tuple[ScalarProgram, ProgramPlan]:
    """Compile mini-ZPL source through the full array-level pipeline.

    Returns the scalarized program (ready for the interpreters, the code
    generators or the cost models) and the optimization plan (which arrays
    fused and contracted).
    """
    program = normalize_source(source, config, self_temp_policy)
    plan = plan_program(program, level)
    return scalarize(program, plan), plan


__all__ = [
    "ALL_LEVELS",
    "BASELINE",
    "C1",
    "C2",
    "C2F3",
    "C2F4",
    "C2P",
    "F1",
    "F2",
    "F3",
    "IRProgram",
    "LEVELS_BY_NAME",
    "Level",
    "ProgramPlan",
    "ScalarProgram",
    "compile_source",
    "normalize_source",
    "plan_program",
    "render_c",
    "render_python",
    "scalarize",
]
