"""Interpreters: reference array semantics and scalarized execution."""

from repro.interp.array_interp import ArrayInterpreter, run_reference
from repro.interp.boundary import fill_boundary
from repro.interp.loop_interp import LoopInterpreter, run_scalarized
from repro.interp.storage import Storage

__all__ = [
    "ArrayInterpreter",
    "fill_boundary",
    "LoopInterpreter",
    "Storage",
    "run_reference",
    "run_scalarized",
]
