"""Shared IR-expression evaluation for the interpreters.

Two evaluation modes share one dispatch:

* **region mode** — every array reference becomes a numpy view of the
  statement's region translated by the reference offset; the expression
  evaluates to a full numpy array (the reference array-semantics path, and
  reductions in both interpreters);
* **point mode** — array references read single elements at ``index +
  offset`` (the scalarized execution path).
"""

from __future__ import annotations

from typing import Callable, Mapping, Tuple

import numpy as np

from repro.ir import expr as ir
from repro.util.errors import InterpError

_INTRINSICS: Mapping[str, Callable] = {
    "sqrt": np.sqrt,
    "exp": np.exp,
    "log": np.log,
    "sin": np.sin,
    "cos": np.cos,
    "tan": np.tan,
    "atan": np.arctan,
    "abs": np.abs,
    "floor": np.floor,
    "ceil": np.ceil,
    "min": np.minimum,
    "max": np.maximum,
    "pow": np.power,
    "mod": np.mod,
    "sign": np.sign,
}

_REDUCERS = {"+": np.sum, "*": np.prod, "max": np.max, "min": np.min}


def apply_binop(op: str, left, right):
    """Apply a source-level binary operator to numpy values."""
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return np.true_divide(left, right)
    if op == "%":
        return np.mod(left, right)
    if op == "^":
        return np.power(np.asarray(left, dtype=np.float64), right)
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "and":
        return np.logical_and(left, right)
    if op == "or":
        return np.logical_or(left, right)
    raise InterpError("unknown binary operator %r" % op)


def apply_unop(op: str, operand):
    if op == "-":
        return -operand
    if op == "not":
        return np.logical_not(operand)
    raise InterpError("unknown unary operator %r" % op)


def apply_intrinsic(name: str, args):
    fn = _INTRINSICS.get(name)
    if fn is None:
        raise InterpError("unknown intrinsic %r" % name)
    result = fn(*args)
    if name in ("floor", "ceil"):
        as_array = np.asarray(result)
        if as_array.ndim == 0:
            return int(as_array)
        return as_array.astype(np.int64)
    return result


def accumulate(op: str, current, value):
    """One reduction step: fold ``value`` into ``current``."""
    if op == "+":
        return current + value
    if op == "*":
        return current * value
    if op == "max":
        return np.maximum(current, value)
    if op == "min":
        return np.minimum(current, value)
    raise InterpError("unknown reduction operator %r" % op)


def reduce_values(op: str, values) -> object:
    reducer = _REDUCERS.get(op)
    if reducer is None:
        raise InterpError("unknown reduction operator %r" % op)
    return reducer(values)


def eval_region(
    expr: ir.IRExpr,
    scalar_env: Mapping[str, object],
    array_view: Callable[[str, Tuple[int, ...]], np.ndarray],
    index_grid: Callable[[int], np.ndarray],
):
    """Evaluate in region mode.

    ``array_view(name, offset)`` returns the numpy view of the statement
    region translated by ``offset``; ``index_grid(dim)`` returns a
    broadcastable grid of coordinates along ``dim``.
    """
    if isinstance(expr, ir.Const):
        return expr.value
    if isinstance(expr, ir.ScalarRef):
        if expr.name not in scalar_env:
            raise InterpError("undefined scalar %r" % expr.name)
        return scalar_env[expr.name]
    if isinstance(expr, ir.ArrayRef):
        return array_view(expr.name, expr.offset)
    if isinstance(expr, ir.IndexRef):
        return index_grid(expr.dim)
    if isinstance(expr, ir.BinOp):
        return apply_binop(
            expr.op,
            eval_region(expr.left, scalar_env, array_view, index_grid),
            eval_region(expr.right, scalar_env, array_view, index_grid),
        )
    if isinstance(expr, ir.UnOp):
        return apply_unop(
            expr.op, eval_region(expr.operand, scalar_env, array_view, index_grid)
        )
    if isinstance(expr, ir.Call):
        args = [
            eval_region(arg, scalar_env, array_view, index_grid)
            for arg in expr.args
        ]
        return apply_intrinsic(expr.name, args)
    if isinstance(expr, ir.Reduce):
        raise InterpError("nested reduction in array context")
    raise InterpError("cannot evaluate %r" % expr)


def eval_point(
    expr: ir.IRExpr,
    scalar_env: Mapping[str, object],
    element: Callable[[str, Tuple[int, ...]], object],
    point: Tuple[int, ...],
):
    """Evaluate in point mode at index ``point``.

    ``element(name, offset)`` reads the element at ``point + offset``.
    """
    if isinstance(expr, ir.Const):
        return expr.value
    if isinstance(expr, ir.ScalarRef):
        if expr.name not in scalar_env:
            raise InterpError("undefined scalar %r" % expr.name)
        return scalar_env[expr.name]
    if isinstance(expr, ir.ArrayRef):
        return element(expr.name, expr.offset)
    if isinstance(expr, ir.IndexRef):
        return point[expr.dim - 1]
    if isinstance(expr, ir.BinOp):
        return apply_binop(
            expr.op,
            eval_point(expr.left, scalar_env, element, point),
            eval_point(expr.right, scalar_env, element, point),
        )
    if isinstance(expr, ir.UnOp):
        return apply_unop(expr.op, eval_point(expr.operand, scalar_env, element, point))
    if isinstance(expr, ir.Call):
        args = [eval_point(arg, scalar_env, element, point) for arg in expr.args]
        return apply_intrinsic(expr.name, args)
    raise InterpError("cannot evaluate %r" % expr)


def eval_scalar(expr: ir.IRExpr, scalar_env: Mapping[str, object]):
    """Evaluate a pure scalar expression (no array references)."""

    def no_element(name: str, offset):
        raise InterpError("array %r referenced in scalar context" % name)

    return eval_point(expr, scalar_env, no_element, ())
