"""Scalarized-program interpreter: executes loop nests element by element.

This interpreter runs the *output* of the compiler (fusion partition, loop
structure vectors, contraction rewrites) with exactly the iteration order
scalarization prescribes, so any illegal fusion, wrong loop direction or
unsound contraction shows up as a state divergence from the reference
interpreter.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.interp.evalexpr import (
    accumulate,
    eval_point,
    eval_region,
    eval_scalar,
    reduce_values,
)
from repro.interp.storage import Storage
from repro.scalarize.loopnest import (
    ElemAssign,
    LoopNest,
    ReductionLoop,
    SBoundary,
    ScalarAssign,
    ScalarProgram,
    SeqLoop,
    SIf,
    SNode,
    SWhile,
)
from repro.util.errors import InterpError
from repro.util.vectors import add


class LoopInterpreter:
    """Executes a :class:`ScalarProgram`."""

    def __init__(self, program: ScalarProgram, initial_arrays=None) -> None:
        from repro.scalarize.emit_common import int_config_env

        self.program = program
        self.storage = Storage()
        self._config_env = int_config_env(program.configs)
        for name, (region, kind) in program.array_allocs.items():
            if name in program.partial:
                dim, depth = program.partial[name]
                self.storage.allocate_buffer(
                    name, region, kind, dim, depth, self._config_env
                )
            else:
                self.storage.allocate_array(name, region, kind, self._config_env)
        if initial_arrays:
            self.storage.seed_arrays(initial_arrays)
        for name, kind in program.scalars.items():
            self.storage.declare_scalar(name, kind)
        self._steps = 0
        self._max_steps = 50_000_000

    def run(self) -> Storage:
        self._execute_body(self.program.body)
        return self.storage

    # ------------------------------------------------------------------

    def _tick(self, count: int = 1) -> None:
        self._steps += count
        if self._steps > self._max_steps:
            raise InterpError("step limit exceeded (runaway loop?)")

    def _int_env(self):
        env = dict(self._config_env)
        env.update(
            (name, int(value))
            for name, value in self.storage.scalars.items()
            if isinstance(value, (int, np.integer))
        )
        return env

    def _execute_body(self, body: List[SNode]) -> None:
        for node in body:
            self._execute(node)

    def _execute(self, node: SNode) -> None:
        self._tick()
        if isinstance(node, LoopNest):
            self._execute_nest(node)
        elif isinstance(node, SBoundary):
            from repro.interp.boundary import fill_boundary

            fill_boundary(
                self.storage,
                node.array,
                node.region.concrete_bounds(self._int_env()),
                node.kind,
            )
        elif isinstance(node, ReductionLoop):
            self._execute_reduction(node)
        elif isinstance(node, ScalarAssign):
            value = eval_scalar(node.rhs, self.storage.scalars)
            self.storage.set_scalar(node.target, value)
        elif isinstance(node, SeqLoop):
            lo = int(eval_scalar(node.lo, self.storage.scalars))
            hi = int(eval_scalar(node.hi, self.storage.scalars))
            iterator = range(lo, hi - 1, -1) if node.downto else range(lo, hi + 1)
            for value in iterator:
                self.storage.set_scalar(node.var, value)
                self._execute_body(node.body)
        elif isinstance(node, SIf):
            if bool(eval_scalar(node.cond, self.storage.scalars)):
                self._execute_body(node.then_body)
            else:
                self._execute_body(node.else_body)
        elif isinstance(node, SWhile):
            while bool(eval_scalar(node.cond, self.storage.scalars)):
                self._tick()
                self._execute_body(node.body)
        else:
            raise InterpError("cannot execute %r" % node)

    # -- loop nests ------------------------------------------------------------

    def _iteration_ranges(self, nest: LoopNest) -> List[Tuple[int, range]]:
        """(dimension, index range) per loop, outermost first."""
        bounds = nest.region.concrete_bounds(self._int_env())
        result = []
        for signed_dim in nest.structure:
            dim = abs(signed_dim)
            lo, hi = bounds[dim - 1]
            if signed_dim > 0:
                result.append((dim, range(lo, hi + 1)))
            else:
                result.append((dim, range(hi, lo - 1, -1)))
        return result

    def _execute_nest(self, nest: LoopNest) -> None:
        ranges = self._iteration_ranges(nest)
        point = [0] * nest.rank
        element = self.storage.element
        scalars = self.storage.scalars

        def loop(level: int) -> None:
            if level == len(ranges):
                self._tick(len(nest.body))
                index = tuple(point)
                for stmt in nest.body:
                    self._execute_elem(stmt, index, element, scalars)
                return
            dim, index_range = ranges[level]
            for value in index_range:
                point[dim - 1] = value
                loop(level + 1)

        loop(0)

    def _execute_elem(self, stmt: ElemAssign, index, element, scalars) -> None:
        def read(name: str, offset):
            return element(name, add(index, offset))

        value = eval_point(stmt.rhs, scalars, read, index)
        if stmt.reduce_op is not None:
            scalars[stmt.scalar_target] = accumulate(
                stmt.reduce_op, scalars[stmt.scalar_target], value
            )
        elif stmt.is_contracted:
            scalars[stmt.scalar_target] = value
        else:
            self.storage.set_element(stmt.target, index, value)

    def _execute_reduction(self, node: ReductionLoop) -> None:
        bounds = node.region.concrete_bounds(self._int_env())
        if any(lo > hi for lo, hi in bounds):
            raise InterpError("reduction over an empty region")

        def array_view(name: str, offset) -> np.ndarray:
            return self.storage.slice_view(name, bounds, offset)

        def index_grid(dim: int) -> np.ndarray:
            lo, hi = bounds[dim - 1]
            shape = [1] * len(bounds)
            shape[dim - 1] = hi - lo + 1
            return np.arange(lo, hi + 1).reshape(shape)

        values = eval_region(node.operand, self.storage.scalars, array_view, index_grid)
        full_shape = tuple(hi - lo + 1 for lo, hi in bounds)
        values = np.broadcast_to(np.asarray(values), full_shape)
        self.storage.set_scalar(node.target, reduce_values(node.op, values))


def run_scalarized(program: ScalarProgram, initial_arrays=None) -> Storage:
    """Execute a scalarized program, optionally seeding array contents."""
    return LoopInterpreter(program, initial_arrays).run()
