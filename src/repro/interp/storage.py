"""Numpy-backed storage shared by both interpreters.

Arrays are allocated over their *allocation region* (declared region plus
halo), so constant-offset references never index outside storage.  Elements
outside the declared region ("boundary" elements in ZPL terms) are
zero-initialized, giving deterministic semantics to stencil reads at the
edges.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.ir.region import Region
from repro.scalarize.emit_common import slice_start_stop
from repro.util.errors import InputError, InterpError

_DTYPES = {"float": np.float64, "integer": np.int64, "boolean": np.bool_}

_SCALAR_DEFAULTS = {"float": 0.0, "integer": 0, "boolean": False}


class Storage:
    """All program state: arrays (with halos) and scalars."""

    def __init__(self) -> None:
        self.arrays: Dict[str, np.ndarray] = {}
        self.bases: Dict[str, Tuple[int, ...]] = {}
        self.scalars: Dict[str, object] = {}
        #: Circular-buffer arrays (partial contraction): name -> (dim, depth)
        self.wrapped: Dict[str, Tuple[int, int]] = {}

    # -- construction ------------------------------------------------------

    def allocate_array(
        self,
        name: str,
        region: Region,
        kind: str,
        env: Optional[Mapping[str, int]] = None,
    ) -> None:
        """Allocate ``name`` over a region; ``env`` binds config scalars
        appearing in its bounds."""
        bounds = region.concrete_bounds(dict(env) if env else {})
        shape = tuple(max(hi - lo + 1, 1) for lo, hi in bounds)
        self.arrays[name] = np.zeros(shape, dtype=_DTYPES[kind])
        self.bases[name] = tuple(lo for lo, _hi in bounds)

    def allocate_buffer(
        self,
        name: str,
        region: Region,
        kind: str,
        dim: int,
        depth: int,
        env: Optional[Mapping[str, int]] = None,
    ) -> None:
        """Allocate a partially contracted array: ``depth`` rows along ``dim``.

        Indices along ``dim`` are taken modulo ``depth`` on every access.
        """
        bounds = list(region.concrete_bounds(dict(env) if env else {}))
        bounds[dim - 1] = (0, depth - 1)
        shape = tuple(max(hi - lo + 1, 1) for lo, hi in bounds)
        self.arrays[name] = np.zeros(shape, dtype=_DTYPES[kind])
        self.bases[name] = tuple(lo for lo, _hi in bounds)
        self.wrapped[name] = (dim, depth)

    def _map_point(self, name: str, point: Tuple[int, ...]) -> Tuple[int, ...]:
        wrap = self.wrapped.get(name)
        base = self.bases[name]
        if wrap is None:
            return tuple(p - b for p, b in zip(point, base))
        dim, depth = wrap
        mapped = []
        for index, (p, b) in enumerate(zip(point, base), start=1):
            if index == dim:
                mapped.append(p % depth)
            else:
                mapped.append(p - b)
        return tuple(mapped)

    def declare_scalar(self, name: str, kind: str) -> None:
        self.scalars[name] = _SCALAR_DEFAULTS[kind]

    def seed_arrays(self, initial: Mapping[str, np.ndarray]) -> None:
        """Overwrite allocated arrays with caller-provided initial contents.

        Values must match the allocation-region shape (halo included) —
        exactly the layout :meth:`snapshot` returns, so one run's output
        feeds the next run's input.  Contents must be safely castable to
        the declared element kind; lossy casts raise instead of silently
        truncating.
        """
        for name, value in initial.items():
            array = self.arrays.get(name)
            if array is None:
                raise InputError(
                    "cannot seed unknown array %r (have: %s)"
                    % (name, ", ".join(sorted(self.arrays)))
                )
            value = np.asarray(value)
            if value.shape != array.shape:
                raise InputError(
                    "initial value for %r has shape %s, allocation needs %s"
                    % (name, value.shape, array.shape)
                )
            if value.dtype != array.dtype and not np.can_cast(
                value.dtype, array.dtype, casting="safe"
            ):
                raise InputError(
                    "initial value for %r has dtype %s, array is %s and "
                    "the cast is not value-preserving"
                    % (name, value.dtype, array.dtype)
                )
            array[...] = value

    # -- access --------------------------------------------------------------

    def scalar(self, name: str) -> object:
        if name not in self.scalars:
            raise InterpError("undefined scalar %r" % name)
        return self.scalars[name]

    def set_scalar(self, name: str, value: object) -> None:
        self.scalars[name] = value

    def element(self, name: str, point: Tuple[int, ...]) -> object:
        """Read one array element at absolute index ``point``."""
        return self.arrays[name][self._map_point(name, point)]

    def set_element(self, name: str, point: Tuple[int, ...], value: object) -> None:
        self.arrays[name][self._map_point(name, point)] = value

    def slice_view(
        self,
        name: str,
        bounds: Tuple[Tuple[int, int], ...],
        offset: Tuple[int, ...],
    ) -> np.ndarray:
        """A view of ``name`` over ``bounds`` translated by ``offset``."""
        if name in self.wrapped:
            raise InterpError(
                "circular buffer %s cannot be viewed as a region slice" % name
            )
        array = self.arrays[name]
        base = self.bases[name]
        slices: List[slice] = []
        for (lo, hi), off, b in zip(bounds, offset, base):
            start, stop = slice_start_stop(lo, hi, off, b)
            if start < 0 or stop > array.shape[len(slices)]:
                raise InterpError(
                    "reference to %s at offset %r escapes its allocation "
                    "(bounds %r)" % (name, offset, bounds)
                )
            slices.append(slice(start, stop))
        return array[tuple(slices)]

    def region_view(self, name: str, region_bounds) -> np.ndarray:
        """A view over the array's own (un-offset) region."""
        rank = len(region_bounds)
        return self.slice_view(name, tuple(region_bounds), (0,) * rank)

    # -- inspection ---------------------------------------------------------

    def snapshot(self) -> Dict[str, np.ndarray]:
        """Copies of all arrays, for differential testing."""
        return {name: array.copy() for name, array in self.arrays.items()}

    def total_array_bytes(self) -> int:
        return sum(array.nbytes for array in self.arrays.values())
