"""Halo filling for ``wrap`` and ``reflect`` boundary statements.

A boundary statement fills every allocated element of an array *outside*
the given region: ``wrap`` copies periodically from the opposite edge,
``reflect`` mirrors across the region boundary.  Dimensions are processed
in order, so corner halo cells combine both dimensions' rules (the
standard order-dependent corner fill).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.interp.storage import Storage
from repro.util.errors import InterpError


def fill_boundary(
    storage: Storage,
    array: str,
    region_bounds: Tuple[Tuple[int, int], ...],
    kind: str,
) -> None:
    """Fill ``array``'s halo outside ``region_bounds`` in place."""
    data = storage.arrays[array]
    base = storage.bases[array]
    if array in storage.wrapped:
        raise InterpError("cannot apply %s to circular buffer %s" % (kind, array))
    if len(region_bounds) != data.ndim:
        raise InterpError(
            "boundary region rank %d does not match array %s rank %d"
            % (len(region_bounds), array, data.ndim)
        )

    for dim, (lo, hi) in enumerate(region_bounds):
        lo_raw = lo - base[dim]
        hi_raw = hi - base[dim]
        extent = data.shape[dim]
        period = hi_raw - lo_raw + 1
        if period <= 0:
            raise InterpError("empty boundary region for %s" % array)
        for raw in range(0, lo_raw):
            _copy_plane(data, dim, raw, _source_index(kind, raw, lo_raw, hi_raw, period))
        for raw in range(hi_raw + 1, extent):
            _copy_plane(data, dim, raw, _source_index(kind, raw, lo_raw, hi_raw, period))


def _source_index(kind: str, raw: int, lo: int, hi: int, period: int) -> int:
    if kind == "wrap":
        # Shift into [lo, hi] by whole periods.
        offset = (raw - lo) % period
        return lo + offset
    if kind == "reflect":
        if raw < lo:
            return 2 * lo - 1 - raw
        return 2 * hi + 1 - raw
    raise InterpError("unknown boundary kind %r" % kind)


def _copy_plane(data: np.ndarray, dim: int, dest: int, source: int) -> None:
    if source < 0 or source >= data.shape[dim]:
        raise InterpError(
            "boundary source index %d outside allocation (dim %d)" % (source, dim)
        )
    dest_slice = [slice(None)] * data.ndim
    source_slice = [slice(None)] * data.ndim
    dest_slice[dim] = dest
    source_slice[dim] = source
    data[tuple(dest_slice)] = data[tuple(source_slice)]
