"""Reference interpreter: executes normal-form IR with array semantics.

Each array statement evaluates its whole right-hand side over the statement
region (numpy views translated by reference offsets) before assigning into
the target — the array-language semantics the compiler must preserve.  This
is the oracle for differential testing of the optimizer: for every program
and every optimization level, the scalarized execution must produce exactly
the same final state.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.interp.evalexpr import eval_region, eval_scalar, reduce_values
from repro.interp.storage import Storage
from repro.ir import expr as ir
from repro.ir.program import IRProgram
from repro.ir.region import Region
from repro.ir.statement import (
    ArrayStatement,
    BoundaryStatement,
    IfStatement,
    IRStatement,
    LoopStatement,
    ReductionStatement,
    ScalarStatement,
    WhileStatement,
)
from repro.util.errors import InterpError


class ArrayInterpreter:
    """Executes an :class:`IRProgram` directly."""

    def __init__(self, program: IRProgram) -> None:
        self.program = program
        self.storage = Storage()
        self._config_env = program.config_env()
        for name, info in program.arrays.items():
            self.storage.allocate_array(
                name, program.allocation_region(name), info.elem_kind, self._config_env
            )
        for name, info in program.scalars.items():
            self.storage.declare_scalar(name, info.kind)
        self._steps = 0
        self._max_steps = 50_000_000

    # -- execution -------------------------------------------------------

    def run(self) -> Storage:
        self._execute_body(self.program.body)
        return self.storage

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self._max_steps:
            raise InterpError("step limit exceeded (runaway loop?)")

    def _execute_body(self, body: List[IRStatement]) -> None:
        for stmt in body:
            self._execute(stmt)

    def _execute(self, stmt: IRStatement) -> None:
        self._tick()
        if isinstance(stmt, BoundaryStatement):
            from repro.interp.boundary import fill_boundary

            fill_boundary(
                self.storage, stmt.array, self._region_bounds(stmt.region), stmt.kind
            )
        elif isinstance(stmt, ReductionStatement):
            value = self._eval_reduce(ir.Reduce(stmt.op, stmt.region, stmt.rhs))
            self.storage.set_scalar(stmt.scalar_target, value)
        elif isinstance(stmt, ArrayStatement):
            self._execute_array(stmt)
        elif isinstance(stmt, ScalarStatement):
            value = self._eval_scalar_rhs(stmt.rhs)
            self.storage.set_scalar(stmt.target, value)
        elif isinstance(stmt, LoopStatement):
            lo = int(eval_scalar(stmt.lo, self.storage.scalars))
            hi = int(eval_scalar(stmt.hi, self.storage.scalars))
            iterator = range(lo, hi - 1, -1) if stmt.downto else range(lo, hi + 1)
            for value in iterator:
                self.storage.set_scalar(stmt.var, value)
                self._execute_body(stmt.body)
        elif isinstance(stmt, IfStatement):
            if bool(eval_scalar(stmt.cond, self.storage.scalars)):
                self._execute_body(stmt.then_body)
            else:
                self._execute_body(stmt.else_body)
        elif isinstance(stmt, WhileStatement):
            while bool(eval_scalar(stmt.cond, self.storage.scalars)):
                self._tick()
                self._execute_body(stmt.body)
        else:
            raise InterpError("cannot execute %r" % stmt)

    # -- array statements ----------------------------------------------------

    def _region_bounds(self, region: Region) -> Tuple[Tuple[int, int], ...]:
        env = dict(self._config_env)
        env.update(
            (name, int(value))
            for name, value in self.storage.scalars.items()
            if isinstance(value, (int, np.integer))
        )
        return region.concrete_bounds(env)

    def _execute_array(self, stmt: ArrayStatement) -> None:
        bounds = self._region_bounds(stmt.region)
        if any(lo > hi for lo, hi in bounds):
            return  # empty region

        def array_view(name: str, offset) -> np.ndarray:
            return self.storage.slice_view(name, bounds, offset)

        def index_grid(dim: int) -> np.ndarray:
            lo, hi = bounds[dim - 1]
            shape = [1] * len(bounds)
            shape[dim - 1] = hi - lo + 1
            return np.arange(lo, hi + 1).reshape(shape)

        value = eval_region(stmt.rhs, self.storage.scalars, array_view, index_grid)
        target_view = self.storage.slice_view(
            stmt.target, bounds, (0,) * len(bounds)
        )
        target_view[...] = value

    def _eval_scalar_rhs(self, expr: ir.IRExpr):
        def visit(node: ir.IRExpr) -> Optional[ir.IRExpr]:
            if isinstance(node, ir.Reduce):
                return ir.Const(self._eval_reduce(node))
            return None

        folded = expr.map(visit)
        return eval_scalar(folded, self.storage.scalars)

    def _eval_reduce(self, node: ir.Reduce):
        bounds = self._region_bounds(node.region)
        if any(lo > hi for lo, hi in bounds):
            raise InterpError("reduction over an empty region")

        def array_view(name: str, offset) -> np.ndarray:
            return self.storage.slice_view(name, bounds, offset)

        def index_grid(dim: int) -> np.ndarray:
            lo, hi = bounds[dim - 1]
            shape = [1] * len(bounds)
            shape[dim - 1] = hi - lo + 1
            return np.arange(lo, hi + 1).reshape(shape)

        values = eval_region(node.operand, self.storage.scalars, array_view, index_grid)
        full_shape = tuple(hi - lo + 1 for lo, hi in bounds)
        values = np.broadcast_to(np.asarray(values), full_shape)
        return reduce_values(node.op, values)


def run_reference(program: IRProgram) -> Storage:
    """Execute a program under reference array semantics."""
    return ArrayInterpreter(program).run()
