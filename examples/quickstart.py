"""Quickstart: compile a small array program through the whole pipeline.

Shows every stage of the array-level approach from the paper:

  source -> normalized statements -> ASDG -> fusion partition ->
  contraction -> scalarized loop nests -> C code,

and runs both interpreters to demonstrate that the optimized program
computes exactly what the array semantics prescribe.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.deps import build_asdg
from repro.fusion import BASELINE, C2, plan_program
from repro.interp import run_reference, run_scalarized
from repro.ir import normalize_source
from repro.scalarize import render_c, scalarize

SOURCE = """
program quickstart;

config n : integer = 8;

region R = [1..n, 1..n];

var A, B, C : [R] float;
var total : float;

begin
  -- seed A from the index space
  [R] A := Index1 * 1.5 + Index2;
  -- B and C are temporaries: dead after this fragment's last use
  [R] B := A@(0,-1) + A@(0,1);
  [R] C := B * 0.5;
  -- a self-update: the compiler inserts (and then contracts) a temporary
  [R] A := A + C;
  total := +<< [R] A;
end;
"""


def main() -> None:
    print("=== 1. Normalized program (Section 2.1) ===")
    program = normalize_source(SOURCE)
    print(program.render())

    print()
    print("=== 2. Array statement dependence graph (Definition 3) ===")
    block = max(program.blocks(), key=len)
    print(build_asdg(block).render())

    print()
    print("=== 3. Fusion for contraction (Figure 3) ===")
    plan = plan_program(program, C2)
    block_plan = plan.plan_for(block)
    print(block_plan.partition.render())
    print("contracted:", sorted(plan.contracted_arrays()))
    print("surviving :", plan.live_arrays())

    print()
    print("=== 4. Scalarized code, before and after (Section 4.2) ===")
    baseline_code = render_c(scalarize(program, plan_program(program, BASELINE)))
    optimized_code = render_c(scalarize(program, plan))
    print("baseline: %d loop nests" % baseline_code.count("for (_i1"))
    print("c2      : %d loop nests" % optimized_code.count("for (_i1"))
    print()
    print(optimized_code)

    print("=== 5. Semantics preserved ===")
    reference = run_reference(program)
    optimized = run_scalarized(scalarize(program, plan))
    assert np.isclose(
        float(optimized.scalars["total"]), float(reference.scalars["total"])
    )
    print(
        "total = %.6f (reference) = %.6f (optimized)"
        % (reference.scalars["total"], optimized.scalars["total"])
    )


if __name__ == "__main__":
    main()
