"""Parallel stencil study: fusion, contraction and communication together.

Compiles a Jacobi-style relaxation at scaled problem sizes and walks the
paper's parallel story: per-node compute time from the cache model,
boundary-exchange communication with the optimizations of Section 5.5, the
two interaction policies, and the resulting percent improvements over
baseline on all three machine models.

Run:  python examples/parallel_stencil.py
"""

from repro.fusion import ALL_LEVELS, BASELINE, C2F3, plan_program
from repro.ir import normalize_source
from repro.machine import ALL_MACHINES
from repro.parallel import (
    FAVOR_COMM,
    FAVOR_FUSION,
    estimate_parallel,
    plan_program_with_policy,
)
from repro.scalarize import scalarize
from repro.util.tables import improvement_over, render_table

SOURCE = """
program relax;

config n : integer = 64;
config steps : integer = 2;

region G = [1..n, 1..n];
region I = [2..n-1, 2..n-1];

var U, UN, F : [G] float;
var DX, DY, RES, W : [G] float;
var t : integer;
var resid : float;

begin
  [G] U := 0.0;
  [G] F := ((Index1 * 7.9 + Index2 * 3.3) % 1.0) - 0.5;
  for t := 1 to steps do
    [I] DX := U@(0,1) + U@(0,-1);
    [I] DY := U@(1,0) + U@(-1,0);
    [I] W := (DX + DY + F) * 0.25;
    [I] RES := W - U;
    [I] UN := U + 0.9 * RES;
    [I] U := UN;
  end;
  resid := +<< [I] abs(U);
end;
"""


def main() -> None:
    program = normalize_source(SOURCE)

    print("=== Per-level improvement over baseline (p = 16) ===")
    rows = []
    for machine in ALL_MACHINES:
        base = estimate_parallel(
            scalarize(program, plan_program(program, BASELINE)), machine, 16
        ).microseconds
        row = [machine.name]
        for level in ALL_LEVELS[1:]:
            time = estimate_parallel(
                scalarize(program, plan_program(program, level)), machine, 16
            ).microseconds
            row.append(improvement_over(base, time))
        rows.append(row)
    headers = ["machine"] + [level.name for level in ALL_LEVELS[1:]]
    print(render_table(headers, rows))

    print()
    print("=== Interaction policies at c2+f3 (Section 5.5) ===")
    rows = []
    for machine in ALL_MACHINES:
        times = {}
        for policy in (FAVOR_FUSION, FAVOR_COMM):
            plan = plan_program_with_policy(program, C2F3, policy, 16)
            cost = estimate_parallel(scalarize(program, plan), machine, 16)
            times[policy] = cost
        slowdown = 100.0 * (
            times[FAVOR_COMM].microseconds - times[FAVOR_FUSION].microseconds
        ) / times[FAVOR_FUSION].microseconds
        rows.append(
            [
                machine.name,
                times[FAVOR_FUSION].microseconds,
                times[FAVOR_COMM].microseconds,
                slowdown,
            ]
        )
    print(
        render_table(
            ["machine", "favor-fusion (us)", "favor-comm (us)", "slowdown %"],
            rows,
        )
    )

    print()
    print("=== Communication share by processor count (T3E, c2+f3) ===")
    machine = ALL_MACHINES[0]
    plan = plan_program_with_policy(program, C2F3, FAVOR_FUSION, 16)
    scalar_program = scalarize(program, plan)
    rows = []
    for p in (1, 4, 16, 64, 256):
        cost = estimate_parallel(scalar_program, machine, p)
        share = (
            100.0 * cost.comm_microseconds / cost.microseconds
            if cost.microseconds
            else 0.0
        )
        rows.append([p, cost.compute_microseconds, cost.comm_microseconds, share])
    print(
        render_table(
            ["p", "compute (us)", "comm (us)", "comm share %"], rows
        )
    )


if __name__ == "__main__":
    main()
