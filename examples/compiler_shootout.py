"""Compiler shootout: the Figure 5/6 methodology, end to end.

Runs the five compiler personalities (PGI HPF, IBM XLHPF, APR XHPF, Cray
F90, ZPL) over the eight probe fragments and prints the Figure 6 table,
then zooms into the fragments where the compilers diverge, showing the
generated code of the paper's algorithm next to a weaker strategy.

Run:  python examples/compiler_shootout.py
"""

from repro.compilers import CRAY_F90, FRAGMENTS, ZPL_113, render_figure6
from repro.scalarize import render_c, scalarize


def show_fragment(personality, fragment) -> None:
    program = personality.normalize(fragment.source)
    plan = personality.plan(program)
    outcome = personality.run_fragment(fragment)
    print(
        "%-18s clusters=%d contracted=%s -> %s"
        % (
            personality.label,
            outcome.probe_clusters,
            sorted(outcome.contracted),
            "pass" if fragment.success(outcome) else "FAIL",
        )
    )
    code = render_c(scalarize(program, plan))
    # Print only the probe's part of the code: after the barrier assignment.
    tail = code.split("barrier = 1.0;")[1]
    for line in tail.splitlines():
        if line.strip():
            print("   " + line)


def main() -> None:
    print(render_figure6())

    divergent = [3, 7, 8]
    for number in divergent:
        fragment = FRAGMENTS[number - 1]
        print()
        print("=" * 72)
        print("Fragment (%d): %s" % (fragment.number, fragment.title))
        print("criterion: %s" % fragment.criterion)
        print(fragment.body)
        show_fragment(ZPL_113, fragment)
        print()
        show_fragment(CRAY_F90, fragment)


if __name__ == "__main__":
    main()
