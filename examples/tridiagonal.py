"""Figure 1 walk-through: contracting the tridiagonal solver's temporary.

The paper opens with a fragment of the SPEC Tomcatv tridiagonal solver: the
array-language version needs a full array R where the Fortran 77 version
uses a single scalar ``s``.  This example shows the paper's machinery
recovering the scalar: the statements of each row iteration fuse into one
loop nest and R contracts away.

Run:  python examples/tridiagonal.py
"""

from repro.deps import build_asdg
from repro.fusion import BASELINE, C2, plan_program
from repro.interp import run_reference, run_scalarized
from repro.ir import normalize_source
from repro.machine import CRAY_T3E, estimate_sequential
from repro.scalarize import render_c, scalarize

SOURCE = """
program tridiagonal;

config n : integer = 48;
config m : integer = 48;

region G = [1..n, 1..m];

var R, D, DD, AA, RX, RY : [G] float;
var i : integer;
var check : float;

begin
  [G] DD := 2.0 + 0.1 * ((Index1 * 3.1 + Index2 * 1.7) % 1.0);
  [G] AA := 0.0 - 0.9;
  [G] RX := Index1 * 0.5 + Index2;
  [G] RY := Index2 * 0.5 - Index1;
  [1, 1..m] D := 1.0 / DD;

  -- Figure 1: forward elimination over rows
  for i := 2 to n do
    [i, 1..m] R  := AA * D@(-1,0);
    [i, 1..m] D  := 1.0 / (DD - AA@(-1,0) * R);
    [i, 1..m] RX := RX - RX@(-1,0) * R;
    [i, 1..m] RY := RY - RY@(-1,0) * R;
  end;

  check := +<< [G] (RX + RY + D);
end;
"""


def main() -> None:
    program = normalize_source(SOURCE)

    print("=== The row block's dependence graph ===")
    body_block = [b for b in program.blocks() if len(b) >= 4][0]
    print(build_asdg(body_block).render())
    print()
    print(
        "Note: D is read at row i-1 and written at row i — disjoint index"
        "\nsets within one iteration, so no intra-block dependence edge;"
        "\nR's dependences are all null vectors, making it contractible."
    )

    plan = plan_program(program, C2)
    print()
    print("=== Contraction outcome (c2) ===")
    print("contracted:", sorted(plan.contracted_arrays()))
    print("surviving :", sorted(plan.live_arrays()))

    print()
    print("=== Generated inner loop (R is now the scalar R__s) ===")
    code = render_c(scalarize(program, plan))
    in_loop = False
    for line in code.splitlines():
        if "for (i = 2" in line:
            in_loop = True
        if in_loop:
            print(line)
        if in_loop and line.strip() == "}" and line.startswith("    }"):
            break

    print()
    print("=== Performance on the Cray T3E model ===")
    for name, level in (("baseline", BASELINE), ("c2", C2)):
        scalar_program = scalarize(program, plan_program(program, level))
        cost = estimate_sequential(scalar_program, CRAY_T3E)
        print(
            "%-8s  %10.0f cycles   L1 misses %8.0f   arrays %d"
            % (
                name,
                cost.cycles,
                cost.counts.misses[0],
                scalar_program.array_count(),
            )
        )

    reference = run_reference(program)
    optimized = run_scalarized(scalarize(program, plan))
    print()
    print(
        "check = %.6f (reference) vs %.6f (optimized)"
        % (reference.scalars["check"], optimized.scalars["check"])
    )


if __name__ == "__main__":
    main()
