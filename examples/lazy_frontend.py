"""Lazy NumPy-like frontend: record, fuse, materialize, re-use.

Writes a Jacobi-style smoothing step as plain Python array expressions
(``repro.array``), materializes it through the fusion pipeline, checks
the result against a straight NumPy evaluation of the same stencil, and
then shows the runtime-caching contract: iterating the step on fresh
data re-traces the same program *shape* every time, so the service
compiles exactly once and serves artifact-cache hits afterwards.

Run:  python examples/lazy_frontend.py
"""

import numpy as np

import repro.array as ra
from repro.service import Service

N, M = 40, 48


def numpy_reference(tk):
    """The same five-point smoothing step, with explicit zero halos."""
    padded = np.zeros((N + 2, M + 2))
    padded[1:-1, 1:-1] = tk
    return (
        padded[1:-1, 1:-1]
        + padded[2:, 1:-1]
        + padded[:-2, 1:-1]
        + padded[1:-1, 2:]
        + padded[1:-1, :-2]
    ) / 5.0


def smooth(tk):
    """shift(axis, d) is the ZPL stencil read TK@(d,0) / TK@(0,d)."""
    return (
        tk
        + tk.shift(0, 1) + tk.shift(0, -1)
        + tk.shift(1, 1) + tk.shift(1, -1)
    ) / 5.0


def main():
    service = Service(persistent=False, level="c2+f4+cse")
    ra.set_default_service(service)

    rng = np.random.default_rng(11)
    state = rng.uniform(0.0, 2.0, size=(N, M))

    # One step, checked elementwise against NumPy with explicit halos.
    out = smooth(ra.asarray(state)).compute()
    assert np.allclose(out, numpy_reference(state), rtol=0, atol=0)
    print("one fused step matches the NumPy reference bit for bit")

    # Iterate: each step re-traces the same graph shape over new data.
    for step in range(6):
        state = np.asarray(smooth(ra.asarray(state)))  # implicit trigger

    counters = service.metrics.snapshot()["counters"]
    print("materializations:", counters["trace.materializations"])
    print("compiles:        ", counters["service.compiles"])
    print("cache hits:      ", counters["cache.hits"])
    assert counters["service.compiles"] == 1
    assert counters["cache.hits"] == 6

    # Reductions materialize to scalars; everything still fuses into
    # the same program when computed together.
    tk = ra.asarray(state)
    total, lowest = ra.compute(tk.sum(), tk.min())
    print("sum=%.6f min=%.6f after 7 smoothing steps" % (total, lowest))
    ra.set_default_service(None)


if __name__ == "__main__":
    main()
