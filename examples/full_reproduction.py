"""Full reproduction in one command.

Regenerates every paper artifact — compiler comparison (Figure 6), static
array counts (Figure 7), problem-size scaling (Figure 8), the runtime
strategy sweep (Figures 9-11 family) and the communication-interaction
study (Section 5.5) — and prints one consolidated report.

Run:  python examples/full_reproduction.py [fast|full]

``fast`` (default) uses reduced sizes and one machine model (~30 s);
``full`` matches the benchmark harnesses (several minutes).
"""

import sys
import time

from repro.eval.report import generate_report


def main() -> None:
    profile = sys.argv[1] if len(sys.argv) > 1 else "fast"
    started = time.time()
    report = generate_report(profile)
    print(report)
    print()
    print("[report generated in %.1f s]" % (time.time() - started))


if __name__ == "__main__":
    main()
