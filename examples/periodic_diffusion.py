"""Periodic diffusion: boundary statements meet fusion and contraction.

Solves a diffusion equation on a torus: ``wrap`` fills the halo
periodically before each stencil step, exactly how ZPL programs express
periodic boundary conditions.  Boundary statements are compiler-primitive-
like — they never fuse (they both read and write their array) and they pin
the wrapped array's storage, while the step's temporaries still contract.

Run:  python examples/periodic_diffusion.py
"""

import numpy as np

from repro.fusion import BASELINE, C2F3, plan_program
from repro.interp import run_reference, run_scalarized
from repro.ir import normalize_source
from repro.machine import CRAY_T3E, estimate_sequential
from repro.scalarize import scalarize

SOURCE = """
program torus;

config n : integer = 48;
config steps : integer = 6;

region R = [1..n, 1..n];

var U, LAP, FLX, FLY, UN : [R] float;
var t : integer;
var mass, peak : float;

begin
  -- a hot spot on a cold torus
  [R] U := max(0.0, 4.0 - abs(Index1 - n * 0.5) - abs(Index2 - n * 0.5));

  for t := 1 to steps do
    [R] wrap U;
    -- fluxes and Laplacian through contracted temporaries
    [R] FLX := U@(0,1) - U;
    [R] FLY := U@(1,0) - U;
    [R] LAP := FLX - (U - U@(0,-1)) + FLY - (U - U@(-1,0));
    [R] UN := U + 0.2 * LAP;
    [R] U := UN;
  end;

  mass := +<< [R] U;
  peak := max<< [R] U;
end;
"""


def main() -> None:
    program = normalize_source(SOURCE)

    plan = plan_program(program, C2F3)
    print("boundary statements :", len(program.boundary_statements()))
    print("contracted          :", sorted(plan.contracted_arrays()))
    print("surviving           :", sorted(plan.live_arrays()))
    print("(U cannot contract: the wrap statement pins its storage)")

    reference = run_reference(program)
    optimized = run_scalarized(scalarize(program, plan))
    assert np.isclose(
        float(optimized.scalars["mass"]), float(reference.scalars["mass"])
    )
    print()
    print(
        "mass conserved on the torus: %.6f -> %.6f (diffusion only moves it)"
        % (reference.scalars["mass"], optimized.scalars["mass"])
    )
    print("peak after diffusion: %.6f" % optimized.scalars["peak"])

    print()
    for name, level in (("baseline", BASELINE), ("c2+f3", C2F3)):
        scalar_program = scalarize(program, plan_program(program, level))
        cost = estimate_sequential(scalar_program, CRAY_T3E, sample_iterations=2)
        print(
            "%-8s  %12.0f cycles   arrays %d"
            % (name, cost.cycles, scalar_program.array_count())
        )


if __name__ == "__main__":
    main()
